#include "src/sched/placement.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "src/common/logging.h"

namespace optimus {

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kOptimusPack:
      return "optimus-pack";
    case PlacementPolicy::kLoadBalance:
      return "load-balance";
    case PlacementPolicy::kTetrisPack:
      return "tetris-pack";
  }
  return "unknown";
}

namespace {

// Attempts to place a job across the first k entries of `server_order`,
// spreading parameter servers and workers as evenly as the servers' free
// capacities allow (Theorem 1 wants equal counts per server; on heterogeneous
// servers we approximate it by always extending the least-loaded server that
// still fits). PS and worker assignments are interleaved proportionally so
// both types end up spread. Commits resources and fills `placement` on
// success; servers are untouched on failure.
bool TryEvenPlacement(const PlacementJobInput& job, const std::vector<size_t>& server_order,
                      int k, std::vector<Server>* servers, JobPlacement* placement) {
  const int w = job.alloc.num_workers;
  const int p = job.alloc.num_ps;
  const int total = w + p;

  std::vector<Resources> tentative_used(k);
  std::vector<int> tentative_w(k, 0);
  std::vector<int> tentative_p(k, 0);

  int assigned_ps = 0;
  for (int t = 0; t < total; ++t) {
    // Bresenham-style interleaving keeps the PS:worker mix even as we go.
    const bool is_ps = (t + 1) * p / total > assigned_ps;
    const Resources& demand = is_ps ? job.ps_demand : job.worker_demand;

    // Pick, among the k servers that can still fit this task, the one with
    // the fewest tasks of this *type* (Theorem 1 balances PS and worker
    // counts independently), breaking ties by total tasks, then by most free
    // capacity.
    int best = -1;
    for (int i = 0; i < k; ++i) {
      const Server& server = (*servers)[server_order[i]];
      if (!server.available() ||
          !(server.Free() - tentative_used[i]).Fits(demand)) {
        continue;
      }
      if (best < 0) {
        best = i;
        continue;
      }
      const int type_i = is_ps ? tentative_p[i] : tentative_w[i];
      const int type_b = is_ps ? tentative_p[best] : tentative_w[best];
      const int tasks_i = tentative_w[i] + tentative_p[i];
      const int tasks_b = tentative_w[best] + tentative_p[best];
      const double free_i =
          ((*servers)[server_order[i]].Free() - tentative_used[i]).cpu();
      const double free_b =
          ((*servers)[server_order[best]].Free() - tentative_used[best]).cpu();
      if (type_i < type_b ||
          (type_i == type_b &&
           (tasks_i < tasks_b || (tasks_i == tasks_b && free_i > free_b)))) {
        best = i;
      }
    }
    if (best < 0) {
      return false;  // this task fits on none of the k servers
    }
    tentative_used[best] += demand;
    if (is_ps) {
      ++tentative_p[best];
      ++assigned_ps;
    } else {
      ++tentative_w[best];
    }
  }

  for (int i = 0; i < k; ++i) {
    if (tentative_w[i] == 0 && tentative_p[i] == 0) {
      continue;
    }
    Server& server = (*servers)[server_order[i]];
    server.Allocate(tentative_used[i]);
    placement->workers_per_server[server_order[i]] += tentative_w[i];
    placement->ps_per_server[server_order[i]] += tentative_p[i];
    placement->used_servers.push_back(static_cast<int>(server_order[i]));
  }
  std::sort(placement->used_servers.begin(), placement->used_servers.end());
  return true;
}

// Keeps servers ordered by free CPU (descending) across many job placements
// with a lazily-invalidated max-heap, so placing J jobs on N servers costs
// O((J * k + updates) log N) instead of re-sorting N servers per job. This is
// what lets the scheduler handle the paper's Fig-12 scale (thousands of jobs
// on 16k nodes in seconds).
class ServerPool {
 public:
  explicit ServerPool(std::vector<Server>* servers) : servers_(servers) {
    // Bulk make_heap is O(n) versus O(n log n) for element-wise pushes; the
    // keys (free_cpu, server index) form a strict total order, so the pop
    // sequence — and therefore every placement decision — is identical either
    // way.
    heap_.reserve(servers_->size());
    for (size_t s = 0; s < servers_->size(); ++s) {
      // Crashed servers never enter the pool; availability does not change
      // within one PlaceJobs call.
      if ((*servers_)[s].available()) {
        heap_.push_back({(*servers_)[s].Free().cpu(), s});
      }
    }
    std::make_heap(heap_.begin(), heap_.end());
  }

  // Pops up to `count` distinct servers in descending free-CPU order.
  std::vector<size_t> PopMostFree(size_t count) {
    std::vector<size_t> out;
    while (out.size() < count && !heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end());
      const auto [free_cpu, s] = heap_.back();
      heap_.pop_back();
      if (free_cpu != (*servers_)[s].Free().cpu()) {
        // Stale; reinsert fresh.
        heap_.push_back({(*servers_)[s].Free().cpu(), s});
        std::push_heap(heap_.begin(), heap_.end());
        continue;
      }
      out.push_back(s);
    }
    return out;
  }

  // Returns servers to the pool (with their current free values).
  void Push(const std::vector<size_t>& servers) {
    for (size_t s : servers) {
      heap_.push_back({(*servers_)[s].Free().cpu(), s});
      std::push_heap(heap_.begin(), heap_.end());
    }
  }

 private:
  std::vector<Server>* servers_;
  std::vector<std::pair<double, size_t>> heap_;
};

// Places one job under the Optimus scheme; returns false when no k works.
bool PlaceOptimus(const PlacementJobInput& job, std::vector<Server>* servers,
                  ServerPool* pool, JobPlacement* placement) {
  const int max_k =
      std::min<int>(static_cast<int>(servers->size()),
                    job.alloc.num_workers + job.alloc.num_ps);

  // Draw candidates in descending-availability order (the paper's sort) and
  // try packing onto the first k of them for growing k.
  std::vector<size_t> candidates = pool->PopMostFree(static_cast<size_t>(max_k));
  bool placed = false;
  for (int k = 1; k <= static_cast<int>(candidates.size()); ++k) {
    if (TryEvenPlacement(job, candidates, k, servers, placement)) {
      placed = true;
      break;
    }
  }
  pool->Push(candidates);
  return placed;
}

enum class PickRule { kMostFree, kTightestFit };

// Places a job one task at a time using a server-picking rule; rolls back on
// failure so the servers are unchanged when false is returned.
bool PlacePerTask(const PlacementJobInput& job, PickRule rule,
                  std::vector<Server>* servers, JobPlacement* placement) {
  struct Step {
    size_t server;
    Resources demand;
  };
  std::vector<Step> committed;

  auto pick = [&](const Resources& demand) -> int {
    int best = -1;
    double best_key = rule == PickRule::kMostFree
                          ? -std::numeric_limits<double>::infinity()
                          : std::numeric_limits<double>::infinity();
    for (size_t s = 0; s < servers->size(); ++s) {
      const Server& server = (*servers)[s];
      if (!server.CanFit(demand)) {
        continue;
      }
      // Key on free CPU: most-free spreads load (Kubernetes default);
      // tightest-fit packs to minimize fragmentation (Tetris).
      const double key = server.Free().cpu();
      const bool better =
          rule == PickRule::kMostFree ? key > best_key : key < best_key;
      if (better) {
        best_key = key;
        best = static_cast<int>(s);
      }
    }
    return best;
  };

  auto place_tasks = [&](int count, const Resources& demand,
                         std::vector<int>* per_server) {
    for (int t = 0; t < count; ++t) {
      const int s = pick(demand);
      if (s < 0) {
        return false;
      }
      (*servers)[static_cast<size_t>(s)].Allocate(demand);
      committed.push_back({static_cast<size_t>(s), demand});
      ++(*per_server)[static_cast<size_t>(s)];
    }
    return true;
  };

  // Interleave PS and worker placement so colocations arise naturally.
  if (place_tasks(job.alloc.num_ps, job.ps_demand, &placement->ps_per_server) &&
      place_tasks(job.alloc.num_workers, job.worker_demand,
                  &placement->workers_per_server)) {
    for (const Step& step : committed) {
      placement->used_servers.push_back(static_cast<int>(step.server));
    }
    std::sort(placement->used_servers.begin(), placement->used_servers.end());
    placement->used_servers.erase(
        std::unique(placement->used_servers.begin(), placement->used_servers.end()),
        placement->used_servers.end());
    return true;
  }
  // Roll back — only the entries this attempt touched, so the vectors stay
  // all-zero without an O(servers) sweep.
  for (const Step& step : committed) {
    (*servers)[step.server].Release(step.demand);
    placement->ps_per_server[step.server] = 0;
    placement->workers_per_server[step.server] = 0;
  }
  return false;
}

}  // namespace

PlacementResult PlaceJobs(PlacementPolicy policy,
                          const std::vector<PlacementJobInput>& jobs,
                          std::vector<Server> servers, bool shrink_to_fit) {
  return PlaceJobs(policy, jobs, &servers, shrink_to_fit);
}

PlacementResult PlaceJobs(PlacementPolicy policy,
                          const std::vector<PlacementJobInput>& jobs,
                          std::vector<Server>* servers_in, bool shrink_to_fit) {
  PlacementResult result;
  std::vector<Server>& servers = *servers_in;
  const size_t n_servers = servers.size();

  // Smallest jobs first (total dominant footprint) to avoid starving them.
  const Resources capacity = TotalCapacity(servers);
  std::vector<size_t> job_order(jobs.size());
  std::iota(job_order.begin(), job_order.end(), 0);
  auto footprint = [&](const PlacementJobInput& job) {
    const Resources total = job.worker_demand * job.alloc.num_workers +
                            job.ps_demand * job.alloc.num_ps;
    return total.DominantShare(capacity);
  };
  std::stable_sort(job_order.begin(), job_order.end(), [&](size_t a, size_t b) {
    return footprint(jobs[a]) < footprint(jobs[b]);
  });

  ServerPool pool(&servers);
  for (size_t idx : job_order) {
    PlacementJobInput job = jobs[idx];
    if (!job.alloc.IsActive()) {
      continue;  // job got no resources this interval; nothing to place
    }

    bool placed = false;
    JobPlacement placement;
    // Failed attempts leave the dense vectors all-zero (TryEvenPlacement only
    // commits on success; PlacePerTask rolls back), so one allocation serves
    // every shrink retry.
    if (job.recycle != nullptr &&
        job.recycle->workers_per_server.size() == n_servers &&
        job.recycle->ps_per_server.size() == n_servers) {
      // Adopt the donor's buffers and re-zero only its occupied entries
      // (used_servers covers every nonzero slot by contract). A donor without
      // the sparse index still saves the allocation: zero it in place.
      placement = std::move(*job.recycle);
      if (placement.used_servers.empty()) {
        std::fill(placement.workers_per_server.begin(),
                  placement.workers_per_server.end(), 0);
        std::fill(placement.ps_per_server.begin(), placement.ps_per_server.end(),
                  0);
      } else {
        for (int s : placement.used_servers) {
          placement.workers_per_server[static_cast<size_t>(s)] = 0;
          placement.ps_per_server[static_cast<size_t>(s)] = 0;
        }
        placement.used_servers.clear();
      }
    } else {
      placement.workers_per_server.assign(n_servers, 0);
      placement.ps_per_server.assign(n_servers, 0);
    }
    while (true) {
      switch (policy) {
        case PlacementPolicy::kOptimusPack:
          placed = PlaceOptimus(job, &servers, &pool, &placement);
          break;
        case PlacementPolicy::kLoadBalance:
          placed = PlacePerTask(job, PickRule::kMostFree, &servers, &placement);
          break;
        case PlacementPolicy::kTetrisPack:
          placed = PlacePerTask(job, PickRule::kTightestFit, &servers, &placement);
          break;
      }
      if (placed || !shrink_to_fit ||
          (job.alloc.num_ps == 1 && job.alloc.num_workers == 1)) {
        break;
      }
      job.alloc.num_ps = std::max(1, job.alloc.num_ps / 2);
      job.alloc.num_workers = std::max(1, job.alloc.num_workers / 2);
    }

    if (placed) {
      result.placements[job.job_id] = std::move(placement);
      result.effective_alloc[job.job_id] = job.alloc;
    } else {
      result.unplaced.push_back(job.job_id);
    }
  }
  std::sort(result.unplaced.begin(), result.unplaced.end());
  return result;
}

}  // namespace optimus
