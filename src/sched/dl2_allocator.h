// DL2-style learned allocation: a linear policy over per-job features.
//
// DL2 (Peng et al., '21) replaces the hand-built marginal-gain rule with a
// policy learned offline from traces. This reproduction keeps the same
// skeleton as Optimus's greedy — repeatedly grant one worker or parameter
// server to the best candidate until nothing fits — but scores candidates
// with a linear function over a fixed feature vector instead of Eqn 9:
//
//   score(job, kind) = w · x(job, kind)
//
//   x0  bias (1.0)
//   x1  relative completion-time reduction  (t0 - t1) / (1 + t0)
//   x2  marginal speed gain                 f(next) - f(cur)
//   x3  packing cheapness                   1 / (eps + dominant share of the
//                                           added task's demand)
//   x4  SRTF urgency                        1 / (1 + Q)
//   x5  small-allocation bonus              1 / (1 + p + w)
//
// The weights are trained offline by tools/optimus_train_policy: it samples
// deterministic synthetic allocation states, computes Optimus's Eqn-9 gain
// as the regression target, and fits non-negative weights with the repo's
// NNLS solver (seeded, bit-reproducible). The defaults baked in below are
// the tool's output with its default flags; see docs/POLICIES.md.
//
// Inference is a pure function of the round inputs — no RNG, no global
// state — so the policy inherits the bitwise-determinism contract for any
// thread count, engine, or shard count.

#ifndef SRC_SCHED_DL2_ALLOCATOR_H_
#define SRC_SCHED_DL2_ALLOCATOR_H_

#include <array>
#include <memory>
#include <vector>

#include "src/sched/optimus_allocator.h"
#include "src/sched/scheduler.h"
#include "src/sched/scheduler_registry.h"

namespace optimus {

inline constexpr size_t kDl2NumFeatures = 6;
using Dl2Weights = std::array<double, kDl2NumFeatures>;

// The committed weights: output of `optimus_train_policy` with default flags
// (--seed=42 --states=4000).
Dl2Weights DefaultDl2Weights();

// Feature vector for granting one more task of the given kind to a job
// currently at (p, w) with estimated speeds f0 (current) and f1 (after the
// grant). Shared between the allocator and the training tool so the two can
// never drift.
std::array<double, kDl2NumFeatures> Dl2Features(double remaining_epochs,
                                                double f0, double f1,
                                                const Resources& unit_demand,
                                                const Resources& capacity,
                                                int num_ps, int num_workers);

struct Dl2AllocatorOptions {
  Dl2Weights weights = {};
  // When non-null, accumulates per-round counters (pops = candidates scored,
  // grants = tasks granted).
  OptimusAllocRoundStats* stats = nullptr;
};

class Dl2Allocator : public Allocator {
 public:
  explicit Dl2Allocator(Dl2AllocatorOptions options);

  using Allocator::Allocate;
  AllocationMap Allocate(const std::vector<SchedJob>& jobs, const Resources& capacity,
                         SpeedSurfaceSet* surfaces) const override;

  const char* name() const override { return "dl2"; }

 private:
  Dl2AllocatorOptions options_;
};

// The stateful factory the registry holds for the "dl2" policy: it carries
// the trained weights, so swapping in a retrained policy means registering a
// new factory instance — no globals involved.
class Dl2PolicyFactory : public PolicyFactory {
 public:
  explicit Dl2PolicyFactory(Dl2Weights weights) : weights_(weights) {}

  std::unique_ptr<Allocator> Create(OptimusAllocRoundStats* stats) const override {
    Dl2AllocatorOptions options;
    options.weights = weights_;
    options.stats = stats;
    return std::make_unique<Dl2Allocator>(options);
  }

  const Dl2Weights& weights() const { return weights_; }

 private:
  Dl2Weights weights_;
};

}  // namespace optimus

#endif  // SRC_SCHED_DL2_ALLOCATOR_H_
