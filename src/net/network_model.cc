#include "src/net/network_model.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "src/common/logging.h"

namespace optimus {

const char* NetworkModelName(NetworkConfig::Model model) {
  switch (model) {
    case NetworkConfig::Model::kFlat:
      return "flat";
    case NetworkConfig::Model::kTopology:
      return "topology";
    case NetworkConfig::Model::kContention:
      return "contention";
  }
  return "UNKNOWN";
}

bool ParseNetworkModelName(const std::string& name, NetworkConfig::Model* out) {
  if (name == "flat") {
    *out = NetworkConfig::Model::kFlat;
  } else if (name == "topology") {
    *out = NetworkConfig::Model::kTopology;
  } else if (name == "contention") {
    *out = NetworkConfig::Model::kContention;
  } else {
    return false;
  }
  return true;
}

std::unique_ptr<NetworkModel> NetworkModel::Create(const NetworkConfig& config,
                                                   int n_servers, int rack_size) {
  if (config.model == NetworkConfig::Model::kFlat) {
    return nullptr;
  }
  return std::make_unique<NetworkModel>(config, n_servers, rack_size);
}

NetworkModel::NetworkModel(const NetworkConfig& config, int n_servers,
                           int rack_size)
    : config_(config), n_servers_(n_servers), rack_size_(rack_size) {
  OPTIMUS_CHECK_GT(n_servers_, 0);
  OPTIMUS_CHECK_GT(config_.nic_bps, 0.0);
  OPTIMUS_CHECK_GE(config_.oversubscription, 1.0);
  num_racks_ = rack_size_ > 0 ? (n_servers_ + rack_size_ - 1) / rack_size_ : 0;
  link_capacity_.assign(static_cast<size_t>(n_servers_ + num_racks_), 0.0);
  for (int s = 0; s < n_servers_; ++s) {
    link_capacity_[static_cast<size_t>(s)] = config_.nic_bps;
  }
  for (int r = 0; r < num_racks_; ++r) {
    // The uplink carries the whole rack's north-south traffic; the
    // oversubscription ratio thins it relative to the sum of its NICs.
    link_capacity_[static_cast<size_t>(n_servers_ + r)] =
        static_cast<double>(rack_size_) * config_.nic_bps / config_.oversubscription;
  }
  link_utilization_.assign(link_capacity_.size(), 0.0);
  stats_.num_links = static_cast<int>(link_capacity_.size());
}

int NetworkModel::RackOf(int server) const {
  return rack_size_ > 0 ? server / rack_size_ : -1;
}

double NetworkModel::LinkCapacity(int link) const {
  OPTIMUS_CHECK_GE(link, 0);
  OPTIMUS_CHECK_LT(link, static_cast<int>(link_capacity_.size()));
  return link_capacity_[static_cast<size_t>(link)];
}

void NetworkModel::BeginRound() {
  flows_.clear();
  job_bandwidth_.clear();
}

void NetworkModel::AddJob(int job_id, const JobPlacement& placement) {
  // Collect the job's occupied servers (ascending: ForEachUsed guarantees
  // server order) and whether it spans more than one rack.
  int first_server = -1;
  int servers_used = 0;
  int first_rack = -1;
  bool spans_racks = false;
  placement.ForEachUsed([&](size_t s, int w_k, int p_k) {
    if (w_k <= 0 && p_k <= 0) {
      return;
    }
    ++servers_used;
    if (first_server < 0) {
      first_server = static_cast<int>(s);
      first_rack = RackOf(first_server);
    } else if (RackOf(static_cast<int>(s)) != first_rack) {
      spans_racks = true;
    }
  });
  if (servers_used <= 1) {
    return;  // single-server job: no network traffic
  }
  placement.ForEachUsed([&](size_t s, int w_k, int p_k) {
    if (w_k <= 0 && p_k <= 0) {
      return;
    }
    Flow flow;
    flow.job = job_id;
    flow.nic_link = static_cast<int>(s);
    flow.uplink = spans_racks && num_racks_ > 0
                      ? n_servers_ + RackOf(static_cast<int>(s))
                      : -1;
    flows_.push_back(flow);
  });
}

void NetworkModel::Solve() {
  ++stats_.solves;
  stats_.flows += static_cast<int64_t>(flows_.size());
  if (config_.model == NetworkConfig::Model::kTopology) {
    SolveTopology();
  } else {
    SolveContention();
  }

  // A job's effective bandwidth is its slowest flow (the Theorem-1 worst-task
  // rule: the step waits for the most constrained transfer). Count flows
  // that ended below their isolated rate as contended.
  for (const Flow& flow : flows_) {
    double isolated = link_capacity_[static_cast<size_t>(flow.nic_link)];
    if (flow.uplink >= 0) {
      isolated =
          std::min(isolated, link_capacity_[static_cast<size_t>(flow.uplink)]);
    }
    if (flow.rate < isolated * (1.0 - 1e-9)) {
      ++stats_.contended_flows;
    }
    auto [it, inserted] = job_bandwidth_.try_emplace(flow.job, flow.rate);
    if (!inserted) {
      it->second = std::min(it->second, flow.rate);
    }
  }
  UpdateUtilization();
}

// Per-job isolation: every job sees an empty fabric. Its k flows through a
// rack uplink split that uplink k ways; NICs carry one flow each.
void NetworkModel::SolveTopology() {
  // Per-uplink flow counts, computed per job. Flows are grouped by job
  // (AddJob appends a job's flows contiguously, jobs arrive in id order).
  size_t i = 0;
  while (i < flows_.size()) {
    const int job = flows_[i].job;
    size_t end = i;
    std::unordered_map<int, int> uplink_flows;
    while (end < flows_.size() && flows_[end].job == job) {
      if (flows_[end].uplink >= 0) {
        ++uplink_flows[flows_[end].uplink];
      }
      ++end;
    }
    for (size_t f = i; f < end; ++f) {
      Flow& flow = flows_[f];
      double rate = link_capacity_[static_cast<size_t>(flow.nic_link)];
      if (flow.uplink >= 0) {
        const double share =
            link_capacity_[static_cast<size_t>(flow.uplink)] /
            static_cast<double>(uplink_flows[flow.uplink]);
        rate = std::min(rate, share);
      }
      flow.rate = rate;
    }
    i = end;
  }
}

// Global max-min fair share by progressive filling: repeatedly saturate the
// link with the smallest per-flow fair share, freeze its flows at that
// share, release their capacity claims elsewhere, and continue. The
// bottleneck order is resolved by (share, link id), so the outcome is a pure
// function of the registered flows.
void NetworkModel::SolveContention() {
  const size_t n_links = link_capacity_.size();
  std::vector<double> remaining(link_capacity_);
  std::vector<int> active(n_links, 0);
  std::vector<std::vector<int>> link_flows(n_links);
  for (size_t f = 0; f < flows_.size(); ++f) {
    Flow& flow = flows_[f];
    flow.frozen = false;
    flow.rate = 0.0;
    link_flows[static_cast<size_t>(flow.nic_link)].push_back(static_cast<int>(f));
    ++active[static_cast<size_t>(flow.nic_link)];
    if (flow.uplink >= 0) {
      link_flows[static_cast<size_t>(flow.uplink)].push_back(static_cast<int>(f));
      ++active[static_cast<size_t>(flow.uplink)];
    }
  }

  // Lazy min-heap of (fair share, link id); stale entries are re-verified on
  // pop against the link's current share.
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  auto share_of = [&](size_t l) {
    return active[l] > 0 ? remaining[l] / static_cast<double>(active[l]) : 0.0;
  };
  for (size_t l = 0; l < n_links; ++l) {
    if (active[l] > 0) {
      heap.emplace(share_of(l), static_cast<int>(l));
    }
  }
  while (!heap.empty()) {
    const auto [share, link] = heap.top();
    heap.pop();
    const size_t l = static_cast<size_t>(link);
    if (active[l] == 0 || share != share_of(l)) {
      continue;  // stale entry
    }
    // Freeze every unfrozen flow through this bottleneck at the fair share.
    for (const int fi : link_flows[l]) {
      Flow& flow = flows_[static_cast<size_t>(fi)];
      if (flow.frozen) {
        continue;
      }
      flow.frozen = true;
      flow.rate = share;
      for (const int path_link : {flow.nic_link, flow.uplink}) {
        if (path_link < 0) {
          continue;
        }
        const size_t pl = static_cast<size_t>(path_link);
        remaining[pl] = std::max(0.0, remaining[pl] - share);
        --active[pl];
        if (pl != l && active[pl] > 0) {
          heap.emplace(share_of(pl), path_link);
        }
      }
    }
  }
}

void NetworkModel::UpdateUtilization() {
  std::fill(link_utilization_.begin(), link_utilization_.end(), 0.0);
  for (const Flow& flow : flows_) {
    link_utilization_[static_cast<size_t>(flow.nic_link)] += flow.rate;
    if (flow.uplink >= 0) {
      link_utilization_[static_cast<size_t>(flow.uplink)] += flow.rate;
    }
  }
  double max_util = 0.0;
  double sum_util = 0.0;
  for (size_t l = 0; l < link_utilization_.size(); ++l) {
    link_utilization_[l] /= link_capacity_[l];
    max_util = std::max(max_util, link_utilization_[l]);
    sum_util += link_utilization_[l];
  }
  stats_.max_link_utilization = max_util;
  stats_.mean_link_utilization =
      link_utilization_.empty()
          ? 0.0
          : sum_util / static_cast<double>(link_utilization_.size());
}

double NetworkModel::BandwidthFor(int job_id) const {
  if (auto it = job_bandwidth_.find(job_id); it != job_bandwidth_.end()) {
    return it->second;
  }
  return config_.nic_bps;
}

double NetworkModel::ServerWeight(int server) const {
  OPTIMUS_CHECK_GE(server, 0);
  OPTIMUS_CHECK_LT(server, n_servers_);
  double util = link_utilization_[static_cast<size_t>(server)];
  if (const int rack = RackOf(server); rack >= 0) {
    util = std::max(util,
                    link_utilization_[static_cast<size_t>(n_servers_ + rack)]);
  }
  return std::max(1e-6, 1.0 - std::min(util, 1.0));
}

}  // namespace optimus
