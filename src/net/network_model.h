// Pluggable network fidelity models (topology, flow-level contention).
//
// The paper's Eqn-2 communication model charges every cross-server byte a
// flat per-container bandwidth (CommConfig::container_bandwidth_bps). This
// subsystem optionally replaces that constant with a fabric:
//
//   server NIC  ->  rack edge switch  ->  aggregation core
//
// Link capacities derive from the scenario's `rack_size` layout: one NIC per
// server at `nic_bps`, one rack uplink per rack at
// `rack_size * nic_bps / oversubscription` (the classic oversubscription
// ratio; 1.0 = non-blocking). The core is non-blocking; edge switches are
// non-blocking for intra-rack traffic, so a job packed under one edge switch
// never pays the uplink.
//
// Each running job emits one flow per server it occupies; a flow's path is
// its server's NIC, plus the rack uplink when the job spans racks. Three
// models:
//
//   kFlat        — no model object at all (Create returns nullptr); callers
//                  keep the Eqn-2 constant, bit-identical to before.
//   kTopology    — each job is solved in isolation against the fabric: its
//                  bandwidth is min(nic, uplink / servers-in-rack) over its
//                  own flows. Captures oversubscription, ignores other jobs.
//   kContention  — all jobs' flows share the fabric; per-flow rates come
//                  from a deterministic max-min fair-share solve
//                  (progressive filling), and a job's bandwidth is the rate
//                  of its slowest flow (the Theorem-1 worst-task rule).
//
// The solve is serial and a pure function of (config, placements registered
// in job order), so simulation outputs stay bitwise identical across thread
// counts, shard counts, and engines.

#ifndef SRC_NET_NETWORK_MODEL_H_
#define SRC_NET_NETWORK_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/pserver/comm_model.h"

namespace optimus {

struct NetworkConfig {
  enum class Model {
    kFlat,        // Eqn-2 constant; the exact-compat default
    kTopology,    // fabric-aware, per-job isolation
    kContention,  // fabric-aware, max-min fair share across jobs
  };
  Model model = Model::kFlat;
  // Per-server NIC capacity in bytes/s (default: 1 GbE line rate).
  double nic_bps = 125e6;
  // Rack-uplink oversubscription ratio (>= 1.0). Uplink capacity =
  // rack_size * nic_bps / oversubscription.
  double oversubscription = 1.0;
};

const char* NetworkModelName(NetworkConfig::Model model);
// Parses "flat" / "topology" / "contention"; returns false on anything else.
bool ParseNetworkModelName(const std::string& name, NetworkConfig::Model* out);

// Counters and gauges describing the last round's solve; exported through
// the observability registry. All values are deterministic (the solve is
// serial and placement-driven).
struct NetworkStats {
  int64_t solves = 0;           // rounds solved since construction
  int64_t flows = 0;            // flows registered, cumulative
  int64_t contended_flows = 0;  // flows below their isolated rate, cumulative
  int num_links = 0;
  double max_link_utilization = 0.0;   // last solve
  double mean_link_utilization = 0.0;  // last solve, over all links
};

class NetworkModel {
 public:
  // Builds the fabric for `n_servers` servers in racks of `rack_size`
  // (rack_size <= 0: a single non-blocking switch, NICs only).
  NetworkModel(const NetworkConfig& config, int n_servers, int rack_size);

  // Returns nullptr for kFlat: no model means no behavior change.
  static std::unique_ptr<NetworkModel> Create(const NetworkConfig& config,
                                              int n_servers, int rack_size);

  // Round protocol: BeginRound, then AddJob for every running job in
  // ascending job-id order, then Solve. BandwidthFor answers from the last
  // solve.
  void BeginRound();
  // Registers the job's flows. Placements confined to one server emit no
  // flows (the job never touches the network; its bandwidth reads as the
  // NIC line rate).
  void AddJob(int job_id, const JobPlacement& placement);
  void Solve();

  // Effective per-container bandwidth (bytes/s) for the job: the rate of its
  // slowest flow from the last solve. Jobs not registered in the last round
  // (or with no flows) get the NIC line rate.
  double BandwidthFor(int job_id) const;

  // Contention weight of a server from the last solve, in (0, 1]: the
  // residual headroom of the most utilized link on the server's path to the
  // core. 1.0 = idle fabric. Used by the PAA contention-aware tie-break.
  double ServerWeight(int server) const;

  const NetworkConfig& config() const { return config_; }
  const NetworkStats& stats() const { return stats_; }
  int n_servers() const { return n_servers_; }
  int num_racks() const { return num_racks_; }

  // Link capacity lookup for tests: link ids [0, n_servers) are NICs,
  // [n_servers, n_servers + num_racks) are rack uplinks.
  double LinkCapacity(int link) const;

 private:
  struct Flow {
    int job = 0;
    int nic_link = -1;
    int uplink = -1;  // -1 when the job stays inside one rack
    double rate = 0.0;
    bool frozen = false;
  };

  int RackOf(int server) const;
  void SolveTopology();
  void SolveContention();
  void UpdateUtilization();

  NetworkConfig config_;
  int n_servers_ = 0;
  int rack_size_ = 0;
  int num_racks_ = 0;
  std::vector<double> link_capacity_;     // NICs then uplinks
  std::vector<double> link_utilization_;  // last solve

  std::vector<Flow> flows_;
  std::unordered_map<int, double> job_bandwidth_;  // last solve
  NetworkStats stats_;
};

}  // namespace optimus

#endif  // SRC_NET_NETWORK_MODEL_H_
