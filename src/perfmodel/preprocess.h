// Loss-sample preprocessing for online curve fitting (§3.1).
//
// Before fitting, Optimus (a) removes outliers — a sample is an outlier when
// it does not fall between the minimum of its next few neighbours and the
// maximum of its previous few neighbours, and is replaced by the neighbour
// average — and (b) normalizes losses by the maximum loss observed so far so
// that every job's curve lives in (0, 1].

#ifndef SRC_PERFMODEL_PREPROCESS_H_
#define SRC_PERFMODEL_PREPROCESS_H_

#include <vector>

namespace optimus {

struct LossSample {
  double step = 0.0;
  double loss = 0.0;
};

// Replaces out-of-band samples with their neighbour average. `window` is the
// number of neighbours considered on each side (the paper uses 5 epochs).
std::vector<LossSample> RemoveOutliers(std::vector<LossSample> samples, int window = 5);

// Divides every loss by the maximum loss in `samples`; no-op on empty input.
// Returns the normalization factor used (max loss; 1.0 if empty/degenerate).
double NormalizeLosses(std::vector<LossSample>* samples);

// Reduces the sample count to at most `max_points` by averaging consecutive
// buckets (both step and loss), preserving curve shape (§3.1 suggests
// sampling/averaging when hundreds of thousands of steps accumulate).
std::vector<LossSample> Downsample(const std::vector<LossSample>& samples,
                                   int max_points);

}  // namespace optimus

#endif  // SRC_PERFMODEL_PREPROCESS_H_
