// Pre-run (p, w) sampling to initialize the speed model (§3.2 "Model
// fitting").
//
// Before the real job starts, Optimus runs it on a small data sample for a
// few steps under several (p, w) configurations (5 by default in §6.1) and
// fits the initial speed function from the measured speeds. The sample pairs
// are spread across the configuration space so the fit is not biased toward
// one regime.

#ifndef SRC_PERFMODEL_SAMPLER_H_
#define SRC_PERFMODEL_SAMPLER_H_

#include <functional>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/perfmodel/speed_model.h"

namespace optimus {

// A measured-speed oracle: returns the (noisy) observed steps/s of a short
// run at (p, w). In the simulator this wraps the ground-truth comm model plus
// measurement noise; on a real cluster it would launch containers.
using SpeedOracle = std::function<double(int num_ps, int num_workers)>;

// Picks `count` distinct (p, w) pairs within [1, max_ps] x [1, max_workers]:
// the two extremes, the balanced mid-point, then deterministic pseudo-random
// fill. count is clamped to the grid size.
std::vector<std::pair<int, int>> SelectSamplePairs(int count, int max_ps,
                                                   int max_workers, Rng* rng);

// Runs the oracle on the selected pairs and loads the samples into `model`
// (which is then fitted). Returns the collected samples.
std::vector<SpeedSample> InitializeSpeedModel(SpeedModel* model, const SpeedOracle& oracle,
                                              int count, int max_ps, int max_workers,
                                              Rng* rng);

}  // namespace optimus

#endif  // SRC_PERFMODEL_SAMPLER_H_
