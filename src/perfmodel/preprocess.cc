#include "src/perfmodel/preprocess.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace optimus {

std::vector<LossSample> RemoveOutliers(std::vector<LossSample> samples, int window) {
  OPTIMUS_CHECK_GE(window, 1);
  const int n = static_cast<int>(samples.size());
  if (n < 3) {
    return samples;
  }
  std::vector<LossSample> out = samples;
  for (int i = 0; i < n; ++i) {
    // Band: [min of next `window` samples, max of previous `window` samples].
    double next_min = std::numeric_limits<double>::infinity();
    for (int j = i + 1; j <= std::min(n - 1, i + window); ++j) {
      next_min = std::min(next_min, samples[j].loss);
    }
    double prev_max = -std::numeric_limits<double>::infinity();
    for (int j = std::max(0, i - window); j < i; ++j) {
      prev_max = std::max(prev_max, samples[j].loss);
    }
    if (!std::isfinite(next_min) || !std::isfinite(prev_max)) {
      continue;  // boundary samples keep their value
    }
    const double lo = std::min(next_min, prev_max);
    const double hi = std::max(next_min, prev_max);
    // Small tolerance: noise-level excursions are not outliers.
    const double slack = 0.05 * std::max(std::abs(hi), 1e-12);
    if (samples[i].loss < lo - slack || samples[i].loss > hi + slack) {
      // Replace with the average of the in-window neighbours.
      double sum = 0.0;
      int count = 0;
      for (int j = std::max(0, i - window); j <= std::min(n - 1, i + window); ++j) {
        if (j == i) {
          continue;
        }
        sum += samples[j].loss;
        ++count;
      }
      if (count > 0) {
        out[i].loss = sum / count;
      }
    }
  }
  return out;
}

double NormalizeLosses(std::vector<LossSample>* samples) {
  OPTIMUS_CHECK(samples != nullptr);
  double max_loss = 0.0;
  for (const LossSample& s : *samples) {
    max_loss = std::max(max_loss, s.loss);
  }
  if (max_loss <= 0.0) {
    return 1.0;
  }
  for (LossSample& s : *samples) {
    s.loss /= max_loss;
  }
  return max_loss;
}

std::vector<LossSample> Downsample(const std::vector<LossSample>& samples,
                                   int max_points) {
  OPTIMUS_CHECK_GE(max_points, 1);
  const int n = static_cast<int>(samples.size());
  if (n <= max_points) {
    return samples;
  }
  std::vector<LossSample> out;
  out.reserve(max_points);
  const double bucket = static_cast<double>(n) / max_points;
  for (int b = 0; b < max_points; ++b) {
    const int lo = static_cast<int>(b * bucket);
    const int hi = std::min(n, static_cast<int>((b + 1) * bucket));
    if (lo >= hi) {
      continue;
    }
    double step_sum = 0.0;
    double loss_sum = 0.0;
    for (int i = lo; i < hi; ++i) {
      step_sum += samples[i].step;
      loss_sum += samples[i].loss;
    }
    const double count = static_cast<double>(hi - lo);
    out.push_back({step_sum / count, loss_sum / count});
  }
  return out;
}

}  // namespace optimus
