#include "src/perfmodel/convergence_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"
#include "src/solver/matrix.h"
#include "src/solver/nnls.h"

namespace optimus {

ConvergenceModel::ConvergenceModel(ConvergenceModelOptions options)
    : options_(options) {
  OPTIMUS_CHECK_GE(options_.min_samples, 3);
  OPTIMUS_CHECK_GE(options_.beta2_grid, 2);
  OPTIMUS_CHECK_GE(options_.refine_passes, 1);
}

void ConvergenceModel::AddSample(double step, double loss) {
  OPTIMUS_CHECK_GE(step, 0.0);
  if (!std::isfinite(loss) || loss <= 0.0) {
    return;  // a real framework can emit NaN losses; never feed them the fit
  }
  samples_.push_back({step, loss});
  dirty_ = true;
}

void ConvergenceModel::Reset() {
  samples_.clear();
  dirty_ = true;
  fitted_ = false;
  beta0_ = beta1_ = beta2_ = 0.0;
  norm_factor_ = 1.0;
  residual_ = 0.0;
  epochs_cache_.valid = false;
}

namespace {

// Loss-space residual of the (beta0, beta1, beta2) candidate. Predictions
// with beta1 == 0 at step 0 diverge, so guard the denominator.
double LossSpaceRss(const std::vector<LossSample>& samples, double beta0,
                    double beta1, double beta2) {
  double rss = 0.0;
  for (const LossSample& s : samples) {
    const double denom = beta0 * s.step + beta1;
    const double pred = denom > 1e-12 ? 1.0 / denom + beta2 : 1e12;
    const double e = pred - s.loss;
    rss += e * e;
  }
  return rss;
}

// NNLS fit of (beta0, beta1) for a fixed beta2 on normalized samples; returns
// the residual in loss space (infinity when the transform is infeasible).
// From-scratch reference path: builds the dense system per candidate.
double FitForBeta2(const std::vector<LossSample>& samples, double beta2, double* beta0,
                   double* beta1, int64_t* nnls_iterations) {
  Matrix a(samples.size(), 2);
  Vector b(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    const double gap = samples[i].loss - beta2;
    if (gap <= 1e-9) {
      return std::numeric_limits<double>::infinity();
    }
    a(i, 0) = samples[i].step;
    a(i, 1) = 1.0;
    b[i] = 1.0 / gap;
  }
  const NnlsResult fit = SolveNnls(a, b);
  *nnls_iterations += fit.iterations;
  *beta0 = fit.x[0];
  *beta1 = fit.x[1];
  return LossSpaceRss(samples, *beta0, *beta1, beta2);
}

// Same fit from a shared A^T A: A = [step, 1] does not depend on beta2, so
// only the right-hand side is rebuilt per candidate. The moment sums below
// accumulate over samples in order, exactly like Matrix::Gram() /
// Matrix::TransposeTimes() over the dense build, so the solve is bit-identical
// to FitForBeta2.
struct ConvGram {
  double step_step = 0.0;  // sum step_i^2
  double step_one = 0.0;   // sum step_i
  double one_one = 0.0;    // n
};

ConvGram AccumulateConvGram(const std::vector<LossSample>& samples) {
  ConvGram g;
  for (const LossSample& s : samples) {
    g.step_step += s.step * s.step;
  }
  for (const LossSample& s : samples) {
    g.step_one += s.step * 1.0;
  }
  for (const LossSample& s : samples) {
    g.one_one += 1.0 * 1.0;
  }
  return g;
}

// `ata` is the shared A^T A of `g` (built once per Fit; it does not depend on
// beta2), so each candidate only rebuilds the right-hand side.
double FitForBeta2Gram(const std::vector<LossSample>& samples, const Matrix& ata,
                       double beta2, double* beta0, double* beta1,
                       int64_t* nnls_iterations) {
  double atb0 = 0.0;
  double atb1 = 0.0;
  double btb = 0.0;
  for (const LossSample& s : samples) {
    const double gap = s.loss - beta2;
    if (gap <= 1e-9) {
      return std::numeric_limits<double>::infinity();
    }
    const double y = 1.0 / gap;
    atb0 += s.step * y;
    atb1 += 1.0 * y;
    btb += y * y;
  }
  static thread_local Vector atb;
  atb.assign(2, 0.0);
  atb[0] = atb0;
  atb[1] = atb1;
  const NnlsResult fit = SolveNnlsGram(ata, atb, btb);
  *nnls_iterations += fit.iterations;
  *beta0 = fit.x[0];
  *beta1 = fit.x[1];
  return LossSpaceRss(samples, *beta0, *beta1, beta2);
}

}  // namespace

bool ConvergenceModel::Fit() {
  if (static_cast<int>(samples_.size()) < options_.min_samples) {
    return fitted_;
  }
  if (caching_ && !dirty_) {
    ++fit_stats_.fit_cache_hits;
    return fitted_;  // no new samples since the last attempt
  }
  dirty_ = false;
  ++fit_stats_.fits;

  // Preprocess: outliers -> normalize -> downsample. The normalization factor
  // applies immediately (even if this attempt ends up degenerate and keeps
  // the previous betas) — PredictLoss always denormalizes with the latest
  // factor.
  std::vector<LossSample> pts = RemoveOutliers(samples_, options_.outlier_window);
  norm_factor_ = NormalizeLosses(&pts);
  pts = Downsample(pts, options_.max_fit_points);

  double min_loss = std::numeric_limits<double>::infinity();
  for (const LossSample& s : pts) {
    min_loss = std::min(min_loss, s.loss);
  }

  const ConvGram gram = AccumulateConvGram(pts);
  Matrix ata(2, 2);
  ata(0, 0) = gram.step_step;
  ata(0, 1) = gram.step_one;
  ata(1, 0) = gram.step_one;
  ata(1, 1) = gram.one_one;

  // Refining grid over beta2 in [0, min_loss).
  double lo = 0.0;
  double hi = std::max(min_loss * 0.999, 0.0);
  double best_rss = std::numeric_limits<double>::infinity();
  double best_b0 = 0.0;
  double best_b1 = 0.0;
  double best_b2 = 0.0;
  for (int pass = 0; pass < options_.refine_passes; ++pass) {
    const int grid = options_.beta2_grid;
    double pass_best = best_b2;
    for (int g = 0; g <= grid; ++g) {
      const double beta2 = lo + (hi - lo) * g / grid;
      double b0 = 0.0;
      double b1 = 0.0;
      const double rss =
          caching_
              ? FitForBeta2Gram(pts, ata, beta2, &b0, &b1,
                                &fit_stats_.nnls_iterations)
              : FitForBeta2(pts, beta2, &b0, &b1, &fit_stats_.nnls_iterations);
      if (rss < best_rss) {
        best_rss = rss;
        best_b0 = b0;
        best_b1 = b1;
        best_b2 = beta2;
        pass_best = beta2;
      }
    }
    // Narrow the window around the best candidate for the next pass.
    const double width = (hi - lo) / grid;
    lo = std::max(0.0, pass_best - width);
    hi = std::min(std::max(min_loss * 0.999, 0.0), pass_best + width);
  }

  if (!std::isfinite(best_rss) || (best_b0 <= 0.0 && best_b1 <= 0.0)) {
    return fitted_;  // keep the previous fit if this one is degenerate
  }
  beta0_ = best_b0;
  beta1_ = best_b1;
  beta2_ = best_b2;
  residual_ = best_rss;
  fitted_ = true;
  epochs_cache_.valid = false;  // the curve changed; re-walk on next query
  return true;
}

double ConvergenceModel::PredictLoss(double step) const {
  OPTIMUS_CHECK(fitted_);
  const double denom = beta0_ * step + beta1_;
  const double normalized = denom > 1e-12 ? 1.0 / denom + beta2_ : 1e12;
  return normalized * norm_factor_;
}

int64_t ConvergenceModel::PredictTotalEpochs(double delta, int patience,
                                             int64_t steps_per_epoch,
                                             int64_t max_epochs) const {
  OPTIMUS_CHECK(fitted_);
  OPTIMUS_CHECK_GT(delta, 0.0);
  OPTIMUS_CHECK_GE(patience, 1);
  OPTIMUS_CHECK_GT(steps_per_epoch, 0);
  if (caching_ && epochs_cache_.valid && epochs_cache_.delta == delta &&
      epochs_cache_.patience == patience &&
      epochs_cache_.steps_per_epoch == steps_per_epoch &&
      epochs_cache_.max_epochs == max_epochs) {
    return epochs_cache_.total;
  }
  // Walk the fitted curve epoch by epoch with the same detector the job
  // itself uses; relative drops are scale-invariant so the normalized curve
  // suffices.
  int streak = 0;
  double prev = PredictLoss(0.0);
  int64_t total = max_epochs;
  for (int64_t e = 1; e <= max_epochs; ++e) {
    const double cur = PredictLoss(static_cast<double>(e * steps_per_epoch));
    const double rel_drop = prev > 0.0 ? (prev - cur) / prev : 0.0;
    if (rel_drop < delta) {
      ++streak;
      if (streak >= patience) {
        total = e;
        break;
      }
    } else {
      streak = 0;
    }
    prev = cur;
  }
  epochs_cache_ = {true, delta, patience, steps_per_epoch, max_epochs, total};
  return total;
}

double ConvergenceModel::PredictRemainingEpochs(double current_step, double delta,
                                                int patience, int64_t steps_per_epoch,
                                                int64_t max_epochs) const {
  const int64_t total = PredictTotalEpochs(delta, patience, steps_per_epoch, max_epochs);
  const double done = current_step / static_cast<double>(steps_per_epoch);
  return std::max(0.0, static_cast<double>(total) - done);
}

}  // namespace optimus
