// Online convergence-curve fitting (§3.1, Eqn 1).
//
// Fits l(k) = 1/(beta0 * k + beta1) + beta2 (beta >= 0) to the training-loss
// samples collected so far. The model is linear in (beta0, beta1) once beta2
// is fixed — 1/(l - beta2) = beta0*k + beta1 — so the fit runs NNLS over a
// refining grid of beta2 candidates and keeps the candidate with the smallest
// residual in loss space. Losses are preprocessed (outlier removal,
// normalization, downsampling) exactly as the paper describes.
//
// The design matrix A = [step, 1] is the same for every beta2 candidate, so
// one Fit() accumulates A^T A once and solves each candidate from the shared
// Gram in O(n) instead of O(n * iterations); a dirty flag skips the refit
// entirely when no samples arrived since the last Fit(), and the epoch-walk
// prediction (PredictTotalEpochs) is memoized per fit. All three shortcuts
// reproduce the from-scratch fit bit for bit; set_caching(false) forces the
// from-scratch path (reference/baseline mode).
//
// The fitted curve answers the scheduler's question: how many more epochs
// until the per-epoch loss decrease stays below the job's threshold?

#ifndef SRC_PERFMODEL_CONVERGENCE_MODEL_H_
#define SRC_PERFMODEL_CONVERGENCE_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/perfmodel/fit_stats.h"
#include "src/perfmodel/preprocess.h"

namespace optimus {

struct ConvergenceModelOptions {
  // Outlier-removal window (neighbours per side).
  int outlier_window = 5;
  // Maximum points handed to the solver; more are averaged down.
  int max_fit_points = 512;
  // beta2 grid resolution per refinement pass and number of passes.
  int beta2_grid = 24;
  int refine_passes = 3;
  // Minimum samples before a fit is attempted.
  int min_samples = 8;
};

class ConvergenceModel {
 public:
  explicit ConvergenceModel(ConvergenceModelOptions options = {});

  // Adds one raw (step, loss) observation.
  void AddSample(double step, double loss);

  // Drops all state (e.g., after a learning-rate change, §7).
  void Reset();

  size_t num_samples() const { return samples_.size(); }
  // Raw samples collected so far (used for state snapshots; refitting from
  // them reproduces the model exactly).
  const std::vector<LossSample>& samples() const { return samples_; }

  // Shared-Gram solves, dirty-flag refits, and prediction memoization on by
  // default; off re-derives everything from scratch on every call.
  void set_caching(bool enabled) { caching_ = enabled; }

  // Refits the curve on all samples collected so far. Returns true when a
  // usable fit exists (also re-queryable via fitted()).
  bool Fit();
  bool fitted() const { return fitted_; }

  // Fitted coefficients, in normalized-loss space.
  double beta0() const { return beta0_; }
  double beta1() const { return beta1_; }
  double beta2() const { return beta2_; }
  // Residual sum of squares of the last fit (normalized space).
  double residual() const { return residual_; }

  // Fit accounting (solve attempts, dirty-flag cache hits, NNLS iterations);
  // fed into the observability registry by the simulator.
  const ModelFitStats& fit_stats() const { return fit_stats_; }

  // Predicted raw (denormalized) loss at a step.
  double PredictLoss(double step) const;

  // Predicted total number of epochs from training start until convergence
  // under (delta, patience); `steps_per_epoch` converts steps to epochs.
  // Returns max_epochs when the fitted curve never converges within it.
  int64_t PredictTotalEpochs(double delta, int patience, int64_t steps_per_epoch,
                             int64_t max_epochs = 10000) const;

  // Remaining epochs from `current_step` until predicted convergence (>= 0).
  double PredictRemainingEpochs(double current_step, double delta, int patience,
                                int64_t steps_per_epoch,
                                int64_t max_epochs = 10000) const;

 private:
  ConvergenceModelOptions options_;
  std::vector<LossSample> samples_;
  bool caching_ = true;
  bool dirty_ = true;  // samples added since the last Fit() attempt
  bool fitted_ = false;
  double beta0_ = 0.0;
  double beta1_ = 0.0;
  double beta2_ = 0.0;
  double norm_factor_ = 1.0;
  double residual_ = 0.0;
  ModelFitStats fit_stats_;

  // Memoized PredictTotalEpochs walk, keyed by its arguments; invalidated
  // whenever the fitted curve changes.
  struct EpochsCache {
    bool valid = false;
    double delta = 0.0;
    int patience = 0;
    int64_t steps_per_epoch = 0;
    int64_t max_epochs = 0;
    int64_t total = 0;
  };
  mutable EpochsCache epochs_cache_;
};

}  // namespace optimus

#endif  // SRC_PERFMODEL_CONVERGENCE_MODEL_H_
