#include "src/perfmodel/curve_families.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"
#include "src/solver/matrix.h"
#include "src/solver/nnls.h"

namespace optimus {

const char* CurveFamilyName(CurveFamily family) {
  switch (family) {
    case CurveFamily::kInversePolynomial:
      return "inverse-polynomial";
    case CurveFamily::kExponential:
      return "exponential";
    case CurveFamily::kPowerLaw:
      return "power-law";
  }
  return "unknown";
}

double CurveFit::Predict(double step) const {
  switch (family) {
    case CurveFamily::kInversePolynomial: {
      const double denom = b0 * step + b1;
      return denom > 1e-12 ? 1.0 / denom + b2 : 1e12;
    }
    case CurveFamily::kExponential:
      return b1 * std::exp(-b0 * step) + b2;
    case CurveFamily::kPowerLaw:
      return b1 * std::pow(step + 1.0, -b0) + b2;
  }
  return 0.0;
}

namespace {

// RSS of a candidate fit over the samples (loss space).
double Rss(const CurveFit& fit, const std::vector<LossSample>& samples) {
  double rss = 0.0;
  for (const LossSample& s : samples) {
    const double e = fit.Predict(s.step) - s.loss;
    rss += e * e;
  }
  return rss;
}

// Inverse polynomial for fixed b2: 1/(l - b2) = b0*k + b1, NNLS.
bool SolveInverse(const std::vector<LossSample>& samples, double floor, CurveFit* fit) {
  Matrix a(samples.size(), 2);
  Vector b(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    const double gap = samples[i].loss - floor;
    if (gap <= 1e-9) {
      return false;
    }
    a(i, 0) = samples[i].step;
    a(i, 1) = 1.0;
    b[i] = 1.0 / gap;
  }
  const NnlsResult r = SolveNnls(a, b);
  fit->b0 = r.x[0];
  fit->b1 = r.x[1];
  return fit->b0 > 0.0 || fit->b1 > 0.0;
}

// Re-solves the amplitude b1 in linear space given fixed b0 and floor, which
// removes the tail bias of the log-space fit: b1 = argmin sum(b1*g(k)+b2-l)^2
// has the closed form sum(g*(l-b2)) / sum(g^2).
template <typename Basis>
void RefineAmplitude(const std::vector<LossSample>& samples, double floor,
                     const Basis& basis, double* b1) {
  double num = 0.0;
  double den = 0.0;
  for (const LossSample& s : samples) {
    const double g = basis(s.step);
    num += g * (s.loss - floor);
    den += g * g;
  }
  if (den > 1e-12 && num > 0.0) {
    *b1 = num / den;
  }
}

// Exponential for fixed b2: ln(l - b2) = ln(b1) - b0*k, ordinary LS.
bool SolveExponential(const std::vector<LossSample>& samples, double floor,
                      CurveFit* fit) {
  Matrix a(samples.size(), 2);
  Vector b(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    const double gap = samples[i].loss - floor;
    if (gap <= 1e-9) {
      return false;
    }
    a(i, 0) = -samples[i].step;
    a(i, 1) = 1.0;
    b[i] = std::log(gap);
  }
  Vector x;
  if (!SolveLeastSquares(a, b, &x)) {
    return false;
  }
  fit->b0 = std::max(0.0, x[0]);
  fit->b1 = std::exp(x[1]);
  if (fit->b0 <= 0.0 || !std::isfinite(fit->b1)) {
    return false;
  }
  const double b0 = fit->b0;
  RefineAmplitude(samples, floor,
                  [b0](double k) { return std::exp(-b0 * k); }, &fit->b1);
  return true;
}

// Power law for fixed b2: ln(l - b2) = ln(b1) - b0*ln(k + 1), ordinary LS.
bool SolvePowerLaw(const std::vector<LossSample>& samples, double floor, CurveFit* fit) {
  Matrix a(samples.size(), 2);
  Vector b(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    const double gap = samples[i].loss - floor;
    if (gap <= 1e-9) {
      return false;
    }
    a(i, 0) = -std::log(samples[i].step + 1.0);
    a(i, 1) = 1.0;
    b[i] = std::log(gap);
  }
  Vector x;
  if (!SolveLeastSquares(a, b, &x)) {
    return false;
  }
  fit->b0 = std::max(0.0, x[0]);
  fit->b1 = std::exp(x[1]);
  if (fit->b0 <= 0.0 || !std::isfinite(fit->b1)) {
    return false;
  }
  const double b0 = fit->b0;
  RefineAmplitude(samples, floor,
                  [b0](double k) { return std::pow(k + 1.0, -b0); }, &fit->b1);
  return true;
}

}  // namespace

CurveFit FitCurveFamily(CurveFamily family, const std::vector<LossSample>& samples,
                        const CurveFitOptions& options) {
  CurveFit best;
  best.family = family;
  if (samples.size() < 3) {
    return best;
  }

  double min_loss = std::numeric_limits<double>::infinity();
  for (const LossSample& s : samples) {
    min_loss = std::min(min_loss, s.loss);
  }

  double lo = 0.0;
  double hi = std::max(0.0, min_loss * 0.999);
  double best_rss = std::numeric_limits<double>::infinity();
  for (int pass = 0; pass < options.refine_passes; ++pass) {
    double pass_best_floor = best.b2;
    for (int g = 0; g <= options.floor_grid; ++g) {
      const double floor = lo + (hi - lo) * g / options.floor_grid;
      CurveFit candidate;
      candidate.family = family;
      candidate.b2 = floor;
      bool ok = false;
      switch (family) {
        case CurveFamily::kInversePolynomial:
          ok = SolveInverse(samples, floor, &candidate);
          break;
        case CurveFamily::kExponential:
          ok = SolveExponential(samples, floor, &candidate);
          break;
        case CurveFamily::kPowerLaw:
          ok = SolvePowerLaw(samples, floor, &candidate);
          break;
      }
      if (!ok) {
        continue;
      }
      const double rss = Rss(candidate, samples);
      if (rss < best_rss) {
        best_rss = rss;
        candidate.rss = rss;
        candidate.valid = true;
        best = candidate;
        pass_best_floor = floor;
      }
    }
    const double width = (hi - lo) / options.floor_grid;
    lo = std::max(0.0, pass_best_floor - width);
    hi = std::min(std::max(0.0, min_loss * 0.999), pass_best_floor + width);
  }
  return best;
}

MultiFamilyConvergenceModel::MultiFamilyConvergenceModel(CurveFitOptions options)
    : options_(options),
      family_rss_(3, std::numeric_limits<double>::infinity()) {}

void MultiFamilyConvergenceModel::AddSample(double step, double loss) {
  if (!std::isfinite(loss) || loss <= 0.0) {
    return;
  }
  samples_.push_back({step, loss});
}

void MultiFamilyConvergenceModel::Reset() {
  samples_.clear();
  best_ = CurveFit();
  family_rss_.assign(3, std::numeric_limits<double>::infinity());
  norm_factor_ = 1.0;
}

bool MultiFamilyConvergenceModel::Fit() {
  if (static_cast<int>(samples_.size()) < min_samples_) {
    return best_.valid;
  }
  std::vector<LossSample> pts = RemoveOutliers(samples_);
  norm_factor_ = NormalizeLosses(&pts);
  pts = Downsample(pts, 512);

  CurveFit best;
  for (CurveFamily family : {CurveFamily::kInversePolynomial, CurveFamily::kExponential,
                             CurveFamily::kPowerLaw}) {
    const CurveFit fit = FitCurveFamily(family, pts, options_);
    family_rss_[static_cast<size_t>(family)] =
        fit.valid ? fit.rss : std::numeric_limits<double>::infinity();
    if (fit.valid && (!best.valid || fit.rss < best.rss)) {
      best = fit;
    }
  }
  if (best.valid) {
    best_ = best;
  }
  return best_.valid;
}

double MultiFamilyConvergenceModel::PredictLoss(double step) const {
  OPTIMUS_CHECK(best_.valid);
  return best_.Predict(step) * norm_factor_;
}

double MultiFamilyConvergenceModel::PredictRemainingEpochs(
    double current_step, double delta, int patience, int64_t steps_per_epoch,
    int64_t max_epochs) const {
  const int64_t total = PredictTotalEpochs(delta, patience, steps_per_epoch, max_epochs);
  const double done = current_step / static_cast<double>(steps_per_epoch);
  return std::max(0.0, static_cast<double>(total) - done);
}

int64_t MultiFamilyConvergenceModel::PredictTotalEpochs(double delta, int patience,
                                                        int64_t steps_per_epoch,
                                                        int64_t max_epochs) const {
  OPTIMUS_CHECK(best_.valid);
  OPTIMUS_CHECK_GT(delta, 0.0);
  OPTIMUS_CHECK_GE(patience, 1);
  int streak = 0;
  double prev = best_.Predict(0.0);
  for (int64_t e = 1; e <= max_epochs; ++e) {
    const double cur = best_.Predict(static_cast<double>(e * steps_per_epoch));
    const double rel_drop = prev > 0.0 ? (prev - cur) / prev : 0.0;
    if (rel_drop < delta) {
      ++streak;
      if (streak >= patience) {
        return e;
      }
    } else {
      streak = 0;
    }
    prev = cur;
  }
  return max_epochs;
}

}  // namespace optimus
