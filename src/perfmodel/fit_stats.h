// Per-model fit accounting shared by the convergence and speed models.
//
// Each model instance is job-owned, so the counters are incremented without
// synchronization even when jobs fit in parallel; the simulator sums them
// over jobs in job order when it samples the metrics registry, which keeps
// the exported totals bitwise deterministic for any thread count.

#ifndef SRC_PERFMODEL_FIT_STATS_H_
#define SRC_PERFMODEL_FIT_STATS_H_

#include <cstdint>

namespace optimus {

struct ModelFitStats {
  // Fit() calls that attempted a solve (had enough samples and, with caching
  // on, new samples since the last attempt).
  int64_t fits = 0;
  // Fit() calls answered from the dirty-flag cache without solving.
  int64_t fit_cache_hits = 0;
  // NNLS active-set iterations summed over every solve (all beta2 candidates
  // for the convergence model).
  int64_t nnls_iterations = 0;
};

}  // namespace optimus

#endif  // SRC_PERFMODEL_FIT_STATS_H_
