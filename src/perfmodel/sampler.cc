#include "src/perfmodel/sampler.h"

#include <algorithm>
#include <set>

#include "src/common/logging.h"

namespace optimus {

std::vector<std::pair<int, int>> SelectSamplePairs(int count, int max_ps,
                                                   int max_workers, Rng* rng) {
  OPTIMUS_CHECK_GE(count, 1);
  OPTIMUS_CHECK_GE(max_ps, 1);
  OPTIMUS_CHECK_GE(max_workers, 1);
  OPTIMUS_CHECK(rng != nullptr);

  const int grid = max_ps * max_workers;
  count = std::min(count, grid);

  std::set<std::pair<int, int>> chosen;
  auto add = [&](int p, int w) {
    if (static_cast<int>(chosen.size()) < count) {
      chosen.insert({std::clamp(p, 1, max_ps), std::clamp(w, 1, max_workers)});
    }
  };

  // Anchor points covering the corners and the balanced middle: these pin
  // down the constant, the w/p slope, and the linear overhead terms.
  add(1, 1);
  add(max_ps, max_workers);
  add(std::max(1, max_ps / 2), std::max(1, max_workers / 2));
  add(max_ps, std::max(1, max_workers / 4));
  add(std::max(1, max_ps / 4), max_workers);

  // Fill the remainder with uniform random distinct pairs.
  int guard = 0;
  while (static_cast<int>(chosen.size()) < count && guard < 10000) {
    ++guard;
    chosen.insert({static_cast<int>(rng->UniformInt(1, max_ps)),
                   static_cast<int>(rng->UniformInt(1, max_workers))});
  }

  return {chosen.begin(), chosen.end()};
}

std::vector<SpeedSample> InitializeSpeedModel(SpeedModel* model, const SpeedOracle& oracle,
                                              int count, int max_ps, int max_workers,
                                              Rng* rng) {
  OPTIMUS_CHECK(model != nullptr);
  OPTIMUS_CHECK(oracle != nullptr);
  std::vector<SpeedSample> samples;
  for (const auto& [p, w] : SelectSamplePairs(count, max_ps, max_workers, rng)) {
    const double speed = oracle(p, w);
    if (speed > 0.0) {
      samples.push_back({p, w, speed});
      model->AddSample(p, w, speed);
    }
  }
  model->Fit();
  return samples;
}

}  // namespace optimus
