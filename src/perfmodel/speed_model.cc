#include "src/perfmodel/speed_model.h"

#include <cmath>

#include "src/common/logging.h"
#include "src/solver/matrix.h"
#include "src/solver/nnls.h"

namespace optimus {

SpeedModel::SpeedModel(TrainingMode mode, int global_batch)
    : mode_(mode), global_batch_(static_cast<double>(global_batch)) {
  if (mode_ == TrainingMode::kSync) {
    OPTIMUS_CHECK_GT(global_batch, 0);
  }
}

void SpeedModel::AddSample(int num_ps, int num_workers, double speed) {
  OPTIMUS_CHECK_GE(num_ps, 1);
  OPTIMUS_CHECK_GE(num_workers, 1);
  if (!std::isfinite(speed) || speed <= 0.0) {
    return;
  }
  samples_.push_back({num_ps, num_workers, speed});
}

void SpeedModel::Reset() {
  samples_.clear();
  theta_.clear();
  fitted_ = false;
  residual_ = 0.0;
}

std::vector<double> SpeedModel::Features(int num_ps, int num_workers) const {
  const double p = static_cast<double>(num_ps);
  const double w = static_cast<double>(num_workers);
  if (mode_ == TrainingMode::kAsync) {
    // T = theta0 + theta1*(w/p) + theta2*w + theta3*p.
    return {1.0, w / p, w, p};
  }
  // T = theta0*(M/w) + theta1 + theta2*(w/p) + theta3*w + theta4*p.
  return {global_batch_ / w, 1.0, w / p, w, p};
}

bool SpeedModel::Fit() {
  const size_t dims = mode_ == TrainingMode::kAsync ? 4 : 5;
  if (samples_.size() < 3) {
    return fitted_;
  }

  Matrix a(samples_.size(), dims);
  Vector b(samples_.size());
  for (size_t i = 0; i < samples_.size(); ++i) {
    const SpeedSample& s = samples_[i];
    const std::vector<double> feat = Features(s.num_ps, s.num_workers);
    for (size_t c = 0; c < dims; ++c) {
      a(i, c) = feat[c];
    }
    // Invert the speed into per-step time: async aggregates w workers.
    b[i] = mode_ == TrainingMode::kAsync ? static_cast<double>(s.num_workers) / s.speed
                                         : 1.0 / s.speed;
  }

  const NnlsResult fit = SolveNnls(a, b);
  double sum = 0.0;
  for (double t : fit.x) {
    sum += t;
  }
  if (sum <= 0.0) {
    return fitted_;  // degenerate; keep any previous fit
  }
  theta_ = fit.x;
  residual_ = fit.residual_sum_of_squares;
  fitted_ = true;
  return true;
}

double SpeedModel::Estimate(int num_ps, int num_workers) const {
  OPTIMUS_CHECK(fitted_);
  OPTIMUS_CHECK_GE(num_ps, 1);
  OPTIMUS_CHECK_GE(num_workers, 1);
  const std::vector<double> feat = Features(num_ps, num_workers);
  double t = 0.0;
  for (size_t c = 0; c < feat.size(); ++c) {
    t += theta_[c] * feat[c];
  }
  if (t <= 1e-12) {
    return 0.0;
  }
  return mode_ == TrainingMode::kAsync ? static_cast<double>(num_workers) / t : 1.0 / t;
}

}  // namespace optimus
