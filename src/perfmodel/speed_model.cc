#include "src/perfmodel/speed_model.h"

#include <cmath>

#include "src/common/logging.h"
#include "src/solver/matrix.h"

namespace optimus {

SpeedModel::SpeedModel(TrainingMode mode, int global_batch)
    : mode_(mode),
      global_batch_(static_cast<double>(global_batch)),
      gram_(mode == TrainingMode::kAsync ? 4 : 5) {
  if (mode_ == TrainingMode::kSync) {
    OPTIMUS_CHECK_GT(global_batch, 0);
  }
}

double SpeedModel::InverseSpeedTarget(const SpeedSample& s) const {
  // Invert the speed into per-step time: async aggregates w workers.
  return mode_ == TrainingMode::kAsync
             ? static_cast<double>(s.num_workers) / s.speed
             : 1.0 / s.speed;
}

void SpeedModel::AddSample(int num_ps, int num_workers, double speed) {
  OPTIMUS_CHECK_GE(num_ps, 1);
  OPTIMUS_CHECK_GE(num_workers, 1);
  if (!std::isfinite(speed) || speed <= 0.0) {
    return;
  }
  samples_.push_back({num_ps, num_workers, speed});
  gram_.Add(Features(num_ps, num_workers), InverseSpeedTarget(samples_.back()));
  dirty_ = true;
}

void SpeedModel::Reset() {
  samples_.clear();
  gram_.Reset();
  dirty_ = false;
  theta_.clear();
  fitted_ = false;
  residual_ = 0.0;
}

std::vector<double> SpeedModel::Features(int num_ps, int num_workers) const {
  const double p = static_cast<double>(num_ps);
  const double w = static_cast<double>(num_workers);
  if (mode_ == TrainingMode::kAsync) {
    // T = theta0 + theta1*(w/p) + theta2*w + theta3*p.
    return {1.0, w / p, w, p};
  }
  // T = theta0*(M/w) + theta1 + theta2*(w/p) + theta3*w + theta4*p.
  return {global_batch_ / w, 1.0, w / p, w, p};
}

bool SpeedModel::Fit() {
  if (samples_.size() < 3) {
    return fitted_;
  }
  if (caching_ && !dirty_) {
    ++fit_stats_.fit_cache_hits;
    return fitted_;  // no new samples since the last solve
  }
  ++fit_stats_.fits;

  NnlsResult fit;
  if (caching_) {
    fit = SolveNnlsGram(gram_);
  } else {
    const size_t d = dims();
    Matrix a(samples_.size(), d);
    Vector b(samples_.size());
    for (size_t i = 0; i < samples_.size(); ++i) {
      const SpeedSample& s = samples_[i];
      const std::vector<double> feat = Features(s.num_ps, s.num_workers);
      for (size_t c = 0; c < d; ++c) {
        a(i, c) = feat[c];
      }
      b[i] = InverseSpeedTarget(s);
    }
    fit = SolveNnls(a, b);
  }
  fit_stats_.nnls_iterations += fit.iterations;
  dirty_ = false;

  double sum = 0.0;
  for (double t : fit.x) {
    sum += t;
  }
  if (sum <= 0.0) {
    return fitted_;  // degenerate; keep any previous fit
  }
  theta_ = fit.x;
  // Exact residual in inverse-speed space (same accumulation order as the
  // dense ResidualSumOfSquares, so both code paths report identical values).
  double rss = 0.0;
  for (const SpeedSample& s : samples_) {
    const std::vector<double> feat = Features(s.num_ps, s.num_workers);
    double pred = 0.0;
    for (size_t c = 0; c < feat.size(); ++c) {
      pred += feat[c] * theta_[c];
    }
    const double e = pred - InverseSpeedTarget(s);
    rss += e * e;
  }
  residual_ = rss;
  fitted_ = true;
  return true;
}

double SpeedModel::Estimate(int num_ps, int num_workers) const {
  OPTIMUS_CHECK(fitted_);
  OPTIMUS_CHECK_GE(num_ps, 1);
  OPTIMUS_CHECK_GE(num_workers, 1);
  const std::vector<double> feat = Features(num_ps, num_workers);
  double t = 0.0;
  for (size_t c = 0; c < feat.size(); ++c) {
    t += theta_[c] * feat[c];
  }
  if (t <= 1e-12) {
    return 0.0;
  }
  return mode_ == TrainingMode::kAsync ? static_cast<double>(num_workers) / t : 1.0 / t;
}

}  // namespace optimus
