// Resource-to-training-speed models (§3.2, Eqns 3 and 4).
//
// Asynchronous training (Eqn 3):
//   f(p, w) = w * (theta0 + theta1*(w/p) + theta2*w + theta3*p)^-1
// Synchronous training (Eqn 4):
//   f(p, w) = (theta0*(M/w) + theta1 + theta2*(w/p) + theta3*w + theta4*p)^-1
//
// Both are linear in theta after inverting the speed (y = w/f resp. 1/f), so
// the coefficients are fitted with NNLS — exactly the paper's procedure. The
// model is initialized from a handful of short pre-runs at different (p, w)
// configurations and then recalibrated online as real measurements accrue.
//
// The normal equations are accumulated incrementally as samples arrive
// (GramSystem), so a refit costs O(k^2 * iterations) regardless of how many
// samples the job has collected, and a Fit() with no new samples returns the
// cached coefficients without solving at all. Both shortcuts reproduce the
// from-scratch fit bit for bit; set_caching(false) forces the from-scratch
// dense path (reference/baseline mode).

#ifndef SRC_PERFMODEL_SPEED_MODEL_H_
#define SRC_PERFMODEL_SPEED_MODEL_H_

#include <vector>

#include "src/models/model_zoo.h"
#include "src/perfmodel/fit_stats.h"
#include "src/solver/nnls.h"

namespace optimus {

struct SpeedSample {
  int num_ps = 0;
  int num_workers = 0;
  double speed = 0.0;  // job-level steps per second
};

class SpeedModel {
 public:
  // `global_batch` feeds the M/w term of the synchronous model; ignored for
  // asynchronous training.
  SpeedModel(TrainingMode mode, int global_batch);

  TrainingMode mode() const { return mode_; }

  void AddSample(int num_ps, int num_workers, double speed);
  void AddSample(const SpeedSample& sample) {
    AddSample(sample.num_ps, sample.num_workers, sample.speed);
  }
  size_t num_samples() const { return samples_.size(); }
  // Raw samples collected so far (used for state snapshots; refitting from
  // them reproduces the model exactly).
  const std::vector<SpeedSample>& samples() const { return samples_; }
  void Reset();

  // Incremental refits (Gram accumulation + dirty flag) on by default; off
  // refits densely from the full sample history on every Fit() call.
  void set_caching(bool enabled) { caching_ = enabled; }

  // Refits theta on all samples. Returns true when a usable fit exists.
  bool Fit();
  bool fitted() const { return fitted_; }

  // Fitted coefficients (4 for async, 5 for sync).
  const std::vector<double>& theta() const { return theta_; }
  // Residual sum of squares in inverse-speed space at the last fit.
  double residual() const { return residual_; }

  // Fit accounting (solve attempts, dirty-flag cache hits, NNLS iterations);
  // fed into the observability registry by the simulator.
  const ModelFitStats& fit_stats() const { return fit_stats_; }

  // Estimated job-level training speed (steps/s); requires fitted().
  double Estimate(int num_ps, int num_workers) const;

 private:
  std::vector<double> Features(int num_ps, int num_workers) const;
  double InverseSpeedTarget(const SpeedSample& s) const;
  size_t dims() const { return mode_ == TrainingMode::kAsync ? 4 : 5; }

  TrainingMode mode_;
  double global_batch_;
  std::vector<SpeedSample> samples_;
  GramSystem gram_;
  bool caching_ = true;
  bool dirty_ = false;  // samples added since the last solve
  std::vector<double> theta_;
  bool fitted_ = false;
  double residual_ = 0.0;
  ModelFitStats fit_stats_;
};

}  // namespace optimus

#endif  // SRC_PERFMODEL_SPEED_MODEL_H_
