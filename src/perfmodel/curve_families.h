// Multi-family loss-curve fitting (§7 "Convergence estimation" extension).
//
// Eqn 1's 1/x family fits SGD-style losses, but the paper notes that some
// models (e.g., A3C) follow curves it cannot describe and points at
// SLAQ-style fitting of alternative function families. This module provides
// three families —
//
//   inverse polynomial:  l = 1/(b0*k + b1) + b2          (Optimus's default)
//   exponential decay:   l = b1 * exp(-b0*k) + b2
//   power law:           l = b1 * (k + 1)^(-b0) + b2
//
// — each fitted by a refining grid over the floor b2 with a linear
// (NNLS / log-linear) solve for the remaining parameters, plus a
// model-selection wrapper that keeps whichever family explains the observed
// losses best.

#ifndef SRC_PERFMODEL_CURVE_FAMILIES_H_
#define SRC_PERFMODEL_CURVE_FAMILIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/perfmodel/preprocess.h"

namespace optimus {

enum class CurveFamily {
  kInversePolynomial,
  kExponential,
  kPowerLaw,
};

const char* CurveFamilyName(CurveFamily family);

struct CurveFit {
  bool valid = false;
  CurveFamily family = CurveFamily::kInversePolynomial;
  // (b0, b1, b2) in normalized-loss space.
  double b0 = 0.0;
  double b1 = 0.0;
  double b2 = 0.0;
  // Residual sum of squares over the fitted points (normalized space).
  double rss = 0.0;

  // Normalized loss prediction at a step.
  double Predict(double step) const;
};

struct CurveFitOptions {
  int floor_grid = 24;
  int refine_passes = 3;
};

// Fits one family to preprocessed, normalized samples.
CurveFit FitCurveFamily(CurveFamily family, const std::vector<LossSample>& samples,
                        const CurveFitOptions& options = {});

// Drop-in alternative to ConvergenceModel that performs model selection over
// all families. Samples are preprocessed exactly like ConvergenceModel's
// (outlier removal, normalization, downsampling).
class MultiFamilyConvergenceModel {
 public:
  explicit MultiFamilyConvergenceModel(CurveFitOptions options = {});

  void AddSample(double step, double loss);
  void Reset();
  size_t num_samples() const { return samples_.size(); }

  // Fits every family and keeps the best; returns true when a usable fit
  // exists.
  bool Fit();
  bool fitted() const { return best_.valid; }
  const CurveFit& best_fit() const { return best_; }
  // RSS of each family at the last Fit (indexed by CurveFamily order);
  // infinity where a family failed.
  const std::vector<double>& family_rss() const { return family_rss_; }

  // Raw (denormalized) loss prediction.
  double PredictLoss(double step) const;

  // Same convergence-walk prediction as ConvergenceModel.
  int64_t PredictTotalEpochs(double delta, int patience, int64_t steps_per_epoch,
                             int64_t max_epochs = 10000) const;

  // Remaining epochs from `current_step` until predicted convergence (>= 0).
  double PredictRemainingEpochs(double current_step, double delta, int patience,
                                int64_t steps_per_epoch,
                                int64_t max_epochs = 10000) const;

 private:
  CurveFitOptions options_;
  std::vector<LossSample> samples_;
  CurveFit best_;
  std::vector<double> family_rss_;
  double norm_factor_ = 1.0;
  int min_samples_ = 8;
};

}  // namespace optimus

#endif  // SRC_PERFMODEL_CURVE_FAMILIES_H_
