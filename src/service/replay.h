// Deterministic request-replay harness for the online service mode.
//
// A replay log is the NDJSON request stream itself — one request per line,
// blank lines and '#' comments skipped — so a recorded session IS its own
// replay input. RunReplay streams the log through a ServiceSession and writes
// one response line per request; because the session's responses carry no
// wall-clock values, the response stream (and the session's final run
// report) is bitwise identical for any --threads setting and across repeated
// replays. The golden-session tests (tests/service_replay_test.cc) assert
// exactly that, byte for byte.
//
// The same harness doubles as the load generator: GenerateSyntheticRequests
// emits a seeded, deterministic op mix (what-if queries, metric snapshots,
// advances, submit/kill pairs) that bench_serve drives through a session by
// the million to measure service latency percentiles.

#ifndef SRC_SERVICE_REPLAY_H_
#define SRC_SERVICE_REPLAY_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "src/service/session.h"

namespace optimus {

struct ReplayResult {
  int64_t requests = 0;
  int64_t errors = 0;          // requests answered with ok=false
  bool shutdown = false;       // the log contained a shutdown request
  // 0 on a clean replay, 3 when the simulator's invariant auditor reported
  // any violation — the same exit-code contract as optimus_sim.
  int exit_code = 0;
};

// Streams request lines from `in` through `session`, writing one response
// line per request to `out` (flushed per line when `flush_each`, for live
// stdio serving). Stops at EOF or after a shutdown request.
ReplayResult RunReplay(ServiceSession* session, std::istream& in,
                       std::ostream& out, bool flush_each = false);

// Synthetic-load mix knobs. Fractions are cumulative-checked in declaration
// order and need not sum to 1; the remainder becomes metrics_snapshot
// requests (the cheapest op, so the default mix is read-heavy like a real
// monitoring client).
struct SyntheticMixOptions {
  double what_if_fraction = 0.30;
  double advance_fraction = 0.20;
  double submit_kill_fraction = 0.01;  // emits a submit AND its kill
  double advance_dt_s = 30.0;
  // Every prom_every-th metrics_snapshot asks for Prometheus format instead
  // of the JSON report.
  int prom_every = 4;
};

// Emits `count` deterministic NDJSON request lines (seeded mix; same seed,
// same bytes) to `out`. The log ends without a shutdown so callers can
// append their own epilogue (e.g. a final metrics_snapshot + shutdown).
void GenerateSyntheticRequests(int64_t count, uint64_t seed,
                               const SyntheticMixOptions& options,
                               std::ostream& out);

}  // namespace optimus

#endif  // SRC_SERVICE_REPLAY_H_
