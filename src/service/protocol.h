// NDJSON request protocol of the online service mode (docs/SERVICE.md).
//
// One request per line, one response line per request. Requests are parsed
// with the same strict position-tracking JSON reader the scenario DSL uses
// (src/workload/json.h): duplicate keys are rejected, nesting depth is
// bounded, and every rejection — parse or validation — carries a 1-based
// "<source>:<line>:<col>:" position so a client can point at the offending
// byte of its own request log.
//
// The op set is closed and each op has a closed key set; an unknown op or an
// unexpected key is an error, not a silent ignore. The common keys "op"
// (required), "id" (optional response-correlation integer; defaults to the
// request's 1-based sequence number) and "t_s" (optional client wall-clock
// timestamp, accepted and ignored so recorded logs replay bit-for-bit) are
// allowed on every op.

#ifndef SRC_SERVICE_PROTOCOL_H_
#define SRC_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/workload/json.h"

namespace optimus {

struct ServiceRequest {
  std::string op;
  // Response-correlation id: the "id" key when given, else the request's
  // 1-based sequence number.
  int64_t id = 0;
  // The parsed request object; op-specific fields are read from here.
  JsonValue body;
};

// The closed op catalog, in documentation order.
const std::vector<std::string>& ServiceOps();
bool IsKnownServiceOp(const std::string& op);

// Whether `op` mutates simulator state. Mutating ops are journaled by the
// session so a snapshot can be restored by deterministic replay.
bool IsMutatingServiceOp(const std::string& op);

// "<source>:<line>:<col>: message" using `at`'s recorded position — the
// shape every protocol rejection takes.
std::string PositionedError(const std::string& source, const JsonValue& at,
                            const std::string& message);

// Parses and structurally validates one request line: strict JSON, a
// top-level object, a known "op", an integral "id" when present, and no key
// outside the op's allowed set. On failure returns false with a positioned
// diagnostic in *error.
bool ParseServiceRequest(const std::string& line, const std::string& source,
                         int64_t sequence, ServiceRequest* request,
                         std::string* error);

}  // namespace optimus

#endif  // SRC_SERVICE_PROTOCOL_H_
