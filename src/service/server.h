// Transport loops for optimus_serve: stdio and Unix-domain-socket serving.
//
// Both speak the same NDJSON protocol (one request line in, one response
// line out, flushed per line). The stdio loop is RunReplay with per-line
// flushing — a live client and a replayed log are the same code path, which
// is what makes recorded sessions trustworthy replays. The socket loop
// accepts clients sequentially (the simulator is single-threaded state; the
// protocol's determinism contract is per-session, not per-connection) and
// ends when a client sends a shutdown request.

#ifndef SRC_SERVICE_SERVER_H_
#define SRC_SERVICE_SERVER_H_

#include <iosfwd>
#include <string>

#include "src/service/replay.h"
#include "src/service/session.h"

namespace optimus {

// Serves newline-delimited requests from `in` to `out` until EOF or a
// shutdown request; responses are flushed per line.
ReplayResult ServeStream(ServiceSession* session, std::istream& in,
                         std::ostream& out);

// Binds a Unix-domain stream socket at `path` (replacing a stale file) and
// serves clients one at a time until a shutdown request. Returns exit code 2
// on socket setup errors (diagnostic on stderr), else the replay result's
// exit code (0, or 3 on audit violations).
int ServeUnixSocket(ServiceSession* session, const std::string& path);

}  // namespace optimus

#endif  // SRC_SERVICE_SERVER_H_
