// ServiceSession: one live simulator behind the NDJSON protocol.
//
// The session owns a Simulator built from a genesis scenario (scenario-v1
// JSON, docs/SCENARIOS.md) and dispatches protocol requests against it via
// the re-entrant stepping API (docs/ALGORITHMS.md §17). Determinism is the
// design center: for a fixed request stream every response byte is fixed —
// responses never carry wall-clock values, metric snapshots exclude
// profiling metrics unless explicitly asked, and what-if queries run against
// a scratch allocator so they perturb nothing.
//
// Snapshot/restore is event-sourced. Serializing a live simulator (model
// fits, NNLS caches, RNG engine state) is neither feasible nor necessary:
// because replay is exact, the pair (genesis scenario text, journal of
// mutating request lines) IS the state. `snapshot` returns that pair;
// `restore` rebuilds the simulator from the genesis and re-applies the
// journal, yielding a session whose remaining outputs are bitwise identical
// to the uninterrupted one.

#ifndef SRC_SERVICE_SESSION_H_
#define SRC_SERVICE_SESSION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/json_writer.h"
#include "src/obs/metrics_registry.h"
#include "src/service/protocol.h"
#include "src/sim/simulator.h"
#include "src/workload/scenario.h"

namespace optimus {

// CLI-level overrides re-applied to every genesis scenario the session loads
// (initial construction, restore, scenario_swap): a snapshot taken under
// them restores correctly because the session remembers and re-applies them.
struct SessionOverrides {
  std::string policy;                // empty = the scenario's first policy
  std::optional<SimEngine> engine;   // nullopt = the scenario's engine
  std::optional<uint64_t> seed;      // nullopt = the scenario's seed
  int threads = 0;                   // 0 = the scenario's thread count
};

class ServiceSession {
 public:
  // Builds a session from genesis scenario text. Returns null with a
  // diagnostic in *error when the scenario does not parse/validate.
  static std::unique_ptr<ServiceSession> Create(std::string genesis_text,
                                                std::string source_name,
                                                SessionOverrides overrides,
                                                std::string* error);

  // Handles one request line end to end: parse, validate, dispatch, journal
  // (mutating ops), count, and time. Returns the single-line JSON response
  // (no trailing newline). Sets *shutdown when the request asked the service
  // to stop. Never throws and never crashes on bad input — every rejection
  // is an ok=false response carrying a line:col diagnostic.
  std::string HandleLine(const std::string& line, bool* shutdown);

  Simulator& simulator() { return *sim_; }
  const Simulator& simulator() const { return *sim_; }

  // Service-level metric catalog: request totals per op (deterministic) and
  // the wall-clock service latency histogram (profiling scope).
  const MetricsRegistry& service_registry() const { return registry_; }
  const Histogram& latency_histogram() const { return *m_latency_; }

  int64_t requests() const { return static_cast<int64_t>(m_requests_->value()); }
  int64_t errors() const { return static_cast<int64_t>(m_errors_->value()); }
  // Whether the simulator's invariant auditor has reported any violation so
  // far; the server and the replay harness propagate this as exit code 3.
  bool audit_failed() const { return sim_->metrics().audit_violations > 0; }

  const std::string& genesis_text() const { return genesis_text_; }
  const std::vector<std::string>& journal() const { return journal_; }

 private:
  ServiceSession() = default;

  // Rebuilds sim_ from scenario text under overrides_ (shared by Create,
  // restore, and scenario_swap). False + diagnostic on a bad scenario.
  bool Rebuild(const std::string& text, const std::string& source,
               std::string* error);
  // Re-applies one journaled request line during restore; bypasses the
  // request counters (a restore is one request regardless of journal size).
  bool ApplyJournalLine(const std::string& line, std::string* error);

  // Op handlers. Each fills the response body (already carrying id/ok/op) or
  // returns false with a positioned diagnostic.
  bool HandleSubmit(const ServiceRequest& req, JsonObject* resp, std::string* error);
  bool HandleKill(const ServiceRequest& req, JsonObject* resp, std::string* error);
  bool HandleWhatIf(const ServiceRequest& req, JsonObject* resp, std::string* error);
  bool HandleAdvance(const ServiceRequest& req, JsonObject* resp, std::string* error);
  bool HandleRun(const ServiceRequest& req, JsonObject* resp, std::string* error);
  bool HandleMetricsSnapshot(const ServiceRequest& req, JsonObject* resp,
                             std::string* error);
  bool HandleSnapshot(const ServiceRequest& req, JsonObject* resp, std::string* error);
  bool HandleRestore(const ServiceRequest& req, JsonObject* resp, std::string* error);
  bool HandleScenarioSwap(const ServiceRequest& req, JsonObject* resp,
                          std::string* error);

  // The JobSpec a submit/what_if request describes: zoo model by name, the
  // scenario workload's demands/caps as defaults, dataset downscaled to the
  // workload's target steps/epoch exactly like the generator's base rule.
  bool BuildJobSpec(const ServiceRequest& req, bool require_future_arrival,
                    JobSpec* spec, std::string* error);

  std::string source_;        // diagnostic source name for request positions
  std::string genesis_text_;  // scenario text the current sim was built from
  std::string genesis_source_;
  SessionOverrides overrides_;
  ScenarioSpec scenario_;
  std::unique_ptr<Simulator> sim_;
  std::vector<std::string> journal_;  // mutating request lines since genesis
  int next_job_id_ = 0;               // smallest id above every known job id
  int64_t sequence_ = 0;              // requests seen (1-based ids)

  MetricsRegistry registry_;
  Counter* m_requests_ = nullptr;
  Counter* m_errors_ = nullptr;
  std::vector<Counter*> m_by_op_;  // parallel to ServiceOps()
  Histogram* m_latency_ = nullptr;
};

}  // namespace optimus

#endif  // SRC_SERVICE_SESSION_H_
