#include "src/service/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <iostream>
#include <string>

#include "src/common/logging.h"

namespace optimus {

ReplayResult ServeStream(ServiceSession* session, std::istream& in,
                         std::ostream& out) {
  return RunReplay(session, in, out, /*flush_each=*/true);
}

namespace {

// Writes all of `data` to `fd`, retrying short writes. False on error.
bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

// Serves one accepted connection; returns whether a shutdown was requested.
bool ServeConnection(ServiceSession* session, int fd) {
  std::string buffer;
  char chunk[4096];
  while (true) {
    // Drain complete lines already buffered before reading more.
    std::string::size_type nl;
    while ((nl = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      const std::string::size_type first = line.find_first_not_of(" \t");
      if (first == std::string::npos || line[first] == '#') {
        continue;
      }
      bool shutdown = false;
      const std::string response = session->HandleLine(line, &shutdown);
      if (!WriteAll(fd, response + "\n")) {
        return false;
      }
      if (shutdown) {
        return true;
      }
    }
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (n == 0) {
      return false;  // client hung up; keep serving new connections
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace

int ServeUnixSocket(ServiceSession* session, const std::string& path) {
  OPTIMUS_CHECK(session != nullptr);
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "socket path too long (max " << sizeof(addr.sun_path) - 1
              << " bytes): " << path << "\n";
    return 2;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::cerr << "socket(): " << std::strerror(errno) << "\n";
    return 2;
  }
  ::unlink(path.c_str());  // replace a stale socket file from a prior run
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener, 1) < 0) {
    std::cerr << "cannot listen on " << path << ": " << std::strerror(errno)
              << "\n";
    ::close(listener);
    return 2;
  }

  bool shutdown = false;
  while (!shutdown) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      std::cerr << "accept(): " << std::strerror(errno) << "\n";
      ::close(listener);
      ::unlink(path.c_str());
      return 2;
    }
    shutdown = ServeConnection(session, fd);
    ::close(fd);
  }
  ::close(listener);
  ::unlink(path.c_str());
  return session->audit_failed() ? 3 : 0;
}

}  // namespace optimus
