#include "src/service/session.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>

#include "src/common/json_writer.h"
#include "src/common/logging.h"
#include "src/models/model_zoo.h"
#include "src/obs/exporters.h"
#include "src/sched/scheduler_registry.h"

namespace optimus {

namespace {

// Non-fatal zoo lookup (FindModel is fatal on a miss; service input is
// untrusted, so a bad name must become an ok=false response, not a crash).
const ModelSpec* TryFindModel(const std::string& name) {
  for (const ModelSpec& model : GetModelZoo()) {
    if (model.name == name) {
      return &model;
    }
  }
  return nullptr;
}

// The generator's base dataset-downscale rule (BaseDatasetScale in
// src/workload/generators.cc): cap steps/epoch at the workload's target so
// service-submitted jobs are sized like generated ones.
double SubmitDatasetScale(const ModelSpec& model, TrainingMode mode,
                          int64_t target_steps_per_epoch) {
  if (target_steps_per_epoch <= 0) {
    return 1.0;
  }
  const int batch = mode == TrainingMode::kSync ? model.default_sync_batch
                                                : model.default_async_minibatch;
  const double full_steps =
      static_cast<double>(model.dataset_examples) / static_cast<double>(batch);
  if (full_steps <= static_cast<double>(target_steps_per_epoch)) {
    return 1.0;
  }
  return static_cast<double>(target_steps_per_epoch) / full_steps;
}

// Latency-histogram bounds: 1 µs to 1 s in a 1-2-5 ladder; service requests
// live at the microsecond end, a full `run` of a large scenario at the top.
std::vector<double> LatencyBounds() {
  return {1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
          1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1, 0.5, 1.0};
}

}  // namespace

std::unique_ptr<ServiceSession> ServiceSession::Create(std::string genesis_text,
                                                       std::string source_name,
                                                       SessionOverrides overrides,
                                                       std::string* error) {
  OPTIMUS_CHECK(error != nullptr);
  if (!overrides.policy.empty() &&
      !SchedulerRegistry::Global().Has(overrides.policy)) {
    *error = SchedulerRegistry::Global().UnknownPolicyMessage(overrides.policy);
    return nullptr;
  }
  std::unique_ptr<ServiceSession> session(new ServiceSession());
  session->source_ = "<request>";
  session->genesis_source_ = std::move(source_name);
  session->overrides_ = std::move(overrides);

  session->m_requests_ = session->registry_.AddCounter(
      "optimus_requests_total", "Service requests received.");
  session->m_errors_ = session->registry_.AddCounter(
      "optimus_request_errors_total", "Requests rejected with ok=false.");
  for (const std::string& op : ServiceOps()) {
    session->m_by_op_.push_back(session->registry_.AddCounter(
        "optimus_requests_" + op + "_total", "Requests with op=" + op + "."));
  }
  session->m_latency_ = session->registry_.AddHistogram(
      "optimus_service_latency_seconds",
      "Wall-clock service latency per request (profiling scope).",
      LatencyBounds(), /*profiling=*/true);

  if (!session->Rebuild(genesis_text, session->genesis_source_, error)) {
    return nullptr;
  }
  return session;
}

bool ServiceSession::Rebuild(const std::string& text, const std::string& source,
                             std::string* error) {
  ScenarioSpec scenario;
  if (!ParseScenario(text, source, &scenario, error)) {
    return false;
  }
  if (!overrides_.policy.empty()) {
    scenario.policies = {overrides_.policy};
  }
  if (overrides_.engine.has_value()) {
    scenario.sim.engine = *overrides_.engine;
  }
  if (overrides_.seed.has_value()) {
    scenario.seed = *overrides_.seed;
  }
  if (overrides_.threads != 0) {
    scenario.sim.threads = overrides_.threads;
  }
  // The run report carries a per-interval series; sample it so a session's
  // final report matches `optimus_sim --metrics-format=json` on the same
  // scenario (batch-equivalence acceptance).
  scenario.sim.obs.per_interval_series = true;

  const std::string policy = scenario.policies.empty() ? std::string("optimus")
                                                       : scenario.policies[0];
  std::vector<JobSpec> specs = scenario.JobsForRepeat(0);
  int next_id = 0;
  for (const JobSpec& spec : specs) {
    next_id = std::max(next_id, spec.id + 1);
  }
  sim_ = std::make_unique<Simulator>(scenario.MakeSimConfig(policy, 0),
                                     scenario.cluster.Build(), std::move(specs));
  scenario_ = std::move(scenario);
  genesis_text_ = text;
  journal_.clear();
  next_job_id_ = next_id;
  return true;
}

bool ServiceSession::ApplyJournalLine(const std::string& line, std::string* error) {
  ServiceRequest req;
  if (!ParseServiceRequest(line, "<journal>", 0, &req, error)) {
    return false;
  }
  if (!IsMutatingServiceOp(req.op)) {
    *error = PositionedError("<journal>", req.body,
                             "journal contains non-mutating op \"" + req.op + "\"");
    return false;
  }
  JsonObject scratch;
  if (req.op == "submit") {
    return HandleSubmit(req, &scratch, error);
  }
  if (req.op == "kill") {
    return HandleKill(req, &scratch, error);
  }
  if (req.op == "advance") {
    return HandleAdvance(req, &scratch, error);
  }
  OPTIMUS_CHECK(req.op == "run") << "unhandled mutating op " << req.op;
  return HandleRun(req, &scratch, error);
}

std::string ServiceSession::HandleLine(const std::string& line, bool* shutdown) {
  const auto started = std::chrono::steady_clock::now();
  ++sequence_;
  m_requests_->Add();

  ServiceRequest req;
  std::string error;
  JsonObject resp;
  bool ok = ParseServiceRequest(line, source_, sequence_, &req, &error);
  resp.Set("id", req.id);
  resp.Set("ok", true);  // key-order placeholder; overwritten in place below
  if (ok) {
    resp.Set("op", req.op);
    const std::vector<std::string>& ops = ServiceOps();
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ops[i] == req.op) {
        m_by_op_[i]->Add();
        break;
      }
    }
    if (req.op == "submit") {
      ok = HandleSubmit(req, &resp, &error);
    } else if (req.op == "kill") {
      ok = HandleKill(req, &resp, &error);
    } else if (req.op == "what_if") {
      ok = HandleWhatIf(req, &resp, &error);
    } else if (req.op == "advance") {
      ok = HandleAdvance(req, &resp, &error);
    } else if (req.op == "run") {
      ok = HandleRun(req, &resp, &error);
    } else if (req.op == "metrics_snapshot") {
      ok = HandleMetricsSnapshot(req, &resp, &error);
    } else if (req.op == "snapshot") {
      ok = HandleSnapshot(req, &resp, &error);
    } else if (req.op == "restore") {
      ok = HandleRestore(req, &resp, &error);
    } else if (req.op == "scenario_swap") {
      ok = HandleScenarioSwap(req, &resp, &error);
    } else {
      OPTIMUS_CHECK(req.op == "shutdown") << "unhandled op " << req.op;
      if (shutdown != nullptr) {
        *shutdown = true;
      }
      resp.Set("now_s", sim_->now_s());
    }
  }
  resp.Set("ok", ok);
  if (!ok) {
    m_errors_->Add();
    resp.Set("error", error);
  } else if (IsMutatingServiceOp(req.op)) {
    journal_.push_back(line);
  }

  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - started;
  m_latency_->Record(elapsed.count());
  return resp.ToCompactString();
}

bool ServiceSession::BuildJobSpec(const ServiceRequest& req,
                                  bool require_future_arrival, JobSpec* spec,
                                  std::string* error) {
  const JsonValue& b = req.body;
  const JsonValue* model = b.Find("model");
  if (model == nullptr) {
    *error = PositionedError(source_, b, "missing required key \"model\"");
    return false;
  }
  if (!model->is_string()) {
    *error = PositionedError(source_, *model, "\"model\" must be a string");
    return false;
  }
  spec->model = TryFindModel(model->AsString());
  if (spec->model == nullptr) {
    *error = PositionedError(source_, *model,
                             "unknown model \"" + model->AsString() + "\"");
    return false;
  }

  spec->id = next_job_id_;
  if (const JsonValue* id = b.Find("job_id")) {
    if (!id->is_number() || std::floor(id->AsDouble()) != id->AsDouble() ||
        id->AsDouble() < 0) {
      *error = PositionedError(source_, *id,
                               "\"job_id\" must be a non-negative integer");
      return false;
    }
    spec->id = static_cast<int>(id->AsInt());
  }

  spec->mode = TrainingMode::kSync;
  if (const JsonValue* mode = b.Find("mode")) {
    if (!mode->is_string() ||
        (mode->AsString() != "sync" && mode->AsString() != "async")) {
      *error = PositionedError(source_, *mode,
                               "\"mode\" must be \"sync\" or \"async\"");
      return false;
    }
    spec->mode = mode->AsString() == "sync" ? TrainingMode::kSync
                                            : TrainingMode::kAsync;
  }

  spec->convergence_delta = 0.02;
  if (const JsonValue* delta = b.Find("convergence_delta")) {
    if (!delta->is_number() || delta->AsDouble() <= 0.0 ||
        delta->AsDouble() > 1.0) {
      *error = PositionedError(source_, *delta,
                               "\"convergence_delta\" must be in (0, 1]");
      return false;
    }
    spec->convergence_delta = delta->AsDouble();
  }

  const WorkloadSpec& workload = scenario_.workload;
  spec->patience = workload.patience;
  if (const JsonValue* patience = b.Find("patience")) {
    if (!patience->is_number() ||
        std::floor(patience->AsDouble()) != patience->AsDouble() ||
        patience->AsDouble() < 1) {
      *error = PositionedError(source_, *patience,
                               "\"patience\" must be an integer >= 1");
      return false;
    }
    spec->patience = static_cast<int>(patience->AsInt());
  }

  spec->worker_demand = workload.worker_demand;
  spec->ps_demand = workload.ps_demand;
  spec->max_workers = workload.max_workers;
  spec->max_ps = workload.max_ps;
  for (const char* key : {"max_workers", "max_ps"}) {
    if (const JsonValue* v = b.Find(key)) {
      if (!v->is_number() || std::floor(v->AsDouble()) != v->AsDouble() ||
          v->AsDouble() < 1) {
        *error = PositionedError(
            source_, *v, std::string("\"") + key + "\" must be an integer >= 1");
        return false;
      }
      (std::string(key) == "max_workers" ? spec->max_workers : spec->max_ps) =
          static_cast<int>(v->AsInt());
    }
  }

  spec->arrival_time_s = sim_->now_s();
  if (const JsonValue* arrival = b.Find("arrival_s")) {
    if (!arrival->is_number()) {
      *error = PositionedError(source_, *arrival, "\"arrival_s\" must be a number");
      return false;
    }
    spec->arrival_time_s = arrival->AsDouble();
    if (require_future_arrival && spec->arrival_time_s < sim_->now_s()) {
      std::ostringstream os;
      os << "\"arrival_s\" " << spec->arrival_time_s << " is in the past (now "
         << sim_->now_s() << ")";
      *error = PositionedError(source_, *arrival, os.str());
      return false;
    }
  }

  spec->dataset_scale = SubmitDatasetScale(
      *spec->model, spec->mode, workload.sizes.target_steps_per_epoch);
  return true;
}

bool ServiceSession::HandleSubmit(const ServiceRequest& req, JsonObject* resp,
                                  std::string* error) {
  JobSpec spec;
  if (!BuildJobSpec(req, /*require_future_arrival=*/true, &spec, error)) {
    return false;
  }
  std::string sim_error;
  if (!sim_->SubmitJob(spec, &sim_error)) {
    *error = PositionedError(source_, req.body, sim_error);
    return false;
  }
  next_job_id_ = std::max(next_job_id_, spec.id + 1);
  resp->Set("job_id", spec.id);
  resp->Set("arrival_s", spec.arrival_time_s);
  resp->Set("total_jobs", sim_->metrics().total_jobs);
  resp->Set("now_s", sim_->now_s());
  return true;
}

bool ServiceSession::HandleKill(const ServiceRequest& req, JsonObject* resp,
                                std::string* error) {
  const JsonValue* id = req.body.Find("job_id");
  if (id == nullptr) {
    *error = PositionedError(source_, req.body, "missing required key \"job_id\"");
    return false;
  }
  if (!id->is_number() || std::floor(id->AsDouble()) != id->AsDouble()) {
    *error = PositionedError(source_, *id, "\"job_id\" must be an integer");
    return false;
  }
  std::string sim_error;
  if (!sim_->KillJob(static_cast<int>(id->AsInt()), &sim_error)) {
    *error = PositionedError(source_, *id, sim_error);
    return false;
  }
  resp->Set("job_id", id->AsInt());
  resp->Set("completed_jobs", sim_->metrics().completed_jobs);
  resp->Set("now_s", sim_->now_s());
  return true;
}

bool ServiceSession::HandleWhatIf(const ServiceRequest& req, JsonObject* resp,
                                  std::string* error) {
  JobSpec spec;
  if (!BuildJobSpec(req, /*require_future_arrival=*/false, &spec, error)) {
    return false;
  }
  const WhatIfResult result = sim_->WhatIf(spec);
  resp->Set("admitted", result.admitted);
  resp->Set("num_ps", result.new_job_alloc.num_ps);
  resp->Set("num_workers", result.new_job_alloc.num_workers);
  resp->Set("completion_s", result.new_job_completion_s);
  resp->Set("total_slowdown_s", result.total_slowdown_s);
  resp->Set("jobs_considered",
            static_cast<int64_t>(result.baseline_completion_s.size()));
  resp->Set("now_s", sim_->now_s());
  return true;
}

bool ServiceSession::HandleAdvance(const ServiceRequest& req, JsonObject* resp,
                                   std::string* error) {
  const JsonValue* to = req.body.Find("to_s");
  const JsonValue* dt = req.body.Find("dt_s");
  if ((to == nullptr) == (dt == nullptr)) {
    *error = PositionedError(source_, req.body,
                             "advance needs exactly one of \"to_s\" / \"dt_s\"");
    return false;
  }
  const JsonValue* given = to != nullptr ? to : dt;
  if (!given->is_number()) {
    *error = PositionedError(source_, *given,
                             to != nullptr ? "\"to_s\" must be a number"
                                           : "\"dt_s\" must be a number");
    return false;
  }
  const double target = to != nullptr ? to->AsDouble()
                                      : sim_->now_s() + dt->AsDouble();
  if (target < sim_->now_s()) {
    std::ostringstream os;
    os << "target time " << target << " is in the past (now " << sim_->now_s()
       << ")";
    *error = PositionedError(source_, *given, os.str());
    return false;
  }
  sim_->AdvanceTo(target);
  resp->Set("now_s", sim_->now_s());
  resp->Set("completed_jobs", sim_->metrics().completed_jobs);
  resp->Set("total_jobs", sim_->metrics().total_jobs);
  return true;
}

bool ServiceSession::HandleRun(const ServiceRequest& req, JsonObject* resp,
                               std::string* error) {
  (void)req;
  (void)error;
  const RunMetrics metrics = sim_->Run();
  resp->Set("completed_jobs", metrics.completed_jobs);
  resp->Set("total_jobs", metrics.total_jobs);
  resp->Set("avg_jct_s", metrics.avg_jct_s);
  resp->Set("makespan_s", metrics.makespan_s);
  resp->Set("audit_violations", metrics.audit_violations);
  resp->Set("now_s", sim_->now_s());
  return true;
}

bool ServiceSession::HandleMetricsSnapshot(const ServiceRequest& req,
                                           JsonObject* resp, std::string* error) {
  std::string format = "report";
  if (const JsonValue* f = req.body.Find("format")) {
    if (!f->is_string() || (f->AsString() != "report" && f->AsString() != "prom")) {
      *error = PositionedError(source_, *f,
                               "\"format\" must be \"report\" or \"prom\"");
      return false;
    }
    format = f->AsString();
  }
  std::string scope = "sim";
  if (const JsonValue* s = req.body.Find("scope")) {
    if (!s->is_string() || (s->AsString() != "sim" && s->AsString() != "service")) {
      *error = PositionedError(source_, *s,
                               "\"scope\" must be \"sim\" or \"service\"");
      return false;
    }
    scope = s->AsString();
  }
  ExportOptions options;
  // Profiling metrics are wall-clock: excluded by default so snapshot
  // responses stay bitwise deterministic (golden replay sessions).
  options.include_profiling = false;
  if (const JsonValue* p = req.body.Find("include_profiling")) {
    if (!p->is_bool()) {
      *error = PositionedError(source_, *p,
                               "\"include_profiling\" must be a boolean");
      return false;
    }
    options.include_profiling = p->AsBool();
  }
  std::string payload;
  if (scope == "sim") {
    payload = format == "report"
                  ? ExportJsonReportString(sim_->registry(), &sim_->series(),
                                           &sim_->flight_recorder(), options)
                  : ExportPrometheusString(sim_->registry(), options);
  } else {
    payload = format == "report"
                  ? ExportJsonReportString(registry_, nullptr, nullptr, options)
                  : ExportPrometheusString(registry_, options);
  }
  resp->Set("format", format);
  resp->Set("scope", scope);
  resp->Set("payload", payload);
  resp->Set("now_s", sim_->now_s());
  return true;
}

bool ServiceSession::HandleSnapshot(const ServiceRequest& req, JsonObject* resp,
                                    std::string* error) {
  (void)req;
  (void)error;
  resp->Set("genesis", genesis_text_);
  resp->Set("journal", journal_);
  resp->Set("journal_len", static_cast<int64_t>(journal_.size()));
  resp->Set("now_s", sim_->now_s());
  return true;
}

bool ServiceSession::HandleRestore(const ServiceRequest& req, JsonObject* resp,
                                   std::string* error) {
  const JsonValue* genesis = req.body.Find("genesis");
  if (genesis == nullptr) {
    *error = PositionedError(source_, req.body, "missing required key \"genesis\"");
    return false;
  }
  if (!genesis->is_string()) {
    *error = PositionedError(source_, *genesis, "\"genesis\" must be a string");
    return false;
  }
  std::vector<std::string> journal;
  if (const JsonValue* j = req.body.Find("journal")) {
    if (!j->is_array()) {
      *error = PositionedError(source_, *j,
                               "\"journal\" must be an array of strings");
      return false;
    }
    for (const JsonValue& entry : j->AsArray()) {
      if (!entry.is_string()) {
        *error = PositionedError(source_, entry, "journal entries must be strings");
        return false;
      }
      journal.push_back(entry.AsString());
    }
  }
  // Rebuild from the snapshot's genesis, then deterministically re-apply its
  // journal. A failure mid-journal leaves the session at the genesis plus the
  // journal prefix that applied cleanly (reported in the error).
  std::string rebuild_error;
  if (!Rebuild(genesis->AsString(), "<restore>", &rebuild_error)) {
    *error = PositionedError(source_, *genesis, rebuild_error);
    return false;
  }
  for (size_t i = 0; i < journal.size(); ++i) {
    std::string apply_error;
    if (!ApplyJournalLine(journal[i], &apply_error)) {
      std::ostringstream os;
      os << "journal entry " << i << " failed: " << apply_error;
      *error = PositionedError(source_, req.body, os.str());
      return false;
    }
    journal_.push_back(journal[i]);
  }
  resp->Set("journal_len", static_cast<int64_t>(journal_.size()));
  resp->Set("total_jobs", sim_->metrics().total_jobs);
  resp->Set("now_s", sim_->now_s());
  return true;
}

bool ServiceSession::HandleScenarioSwap(const ServiceRequest& req,
                                        JsonObject* resp, std::string* error) {
  const JsonValue* inline_text = req.body.Find("scenario");
  const JsonValue* path = req.body.Find("path");
  if ((inline_text == nullptr) == (path == nullptr)) {
    *error = PositionedError(
        source_, req.body,
        "scenario_swap needs exactly one of \"scenario\" / \"path\"");
    return false;
  }
  std::string text;
  std::string source;
  if (inline_text != nullptr) {
    if (!inline_text->is_string()) {
      *error = PositionedError(source_, *inline_text,
                               "\"scenario\" must be a string");
      return false;
    }
    text = inline_text->AsString();
    source = "<scenario_swap>";
  } else {
    if (!path->is_string()) {
      *error = PositionedError(source_, *path, "\"path\" must be a string");
      return false;
    }
    std::ifstream in(path->AsString());
    if (!in) {
      *error = PositionedError(source_, *path,
                               "cannot read \"" + path->AsString() + "\"");
      return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
    source = path->AsString();
  }
  std::string rebuild_error;
  if (!Rebuild(text, source, &rebuild_error)) {
    *error = PositionedError(source_, req.body, rebuild_error);
    return false;
  }
  resp->Set("scenario", scenario_.name);
  resp->Set("total_jobs", sim_->metrics().total_jobs);
  resp->Set("now_s", sim_->now_s());
  return true;
}

}  // namespace optimus
