#include "src/service/replay.h"

#include <istream>
#include <ostream>
#include <string>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/models/model_zoo.h"

namespace optimus {

ReplayResult RunReplay(ServiceSession* session, std::istream& in,
                       std::ostream& out, bool flush_each) {
  OPTIMUS_CHECK(session != nullptr);
  ReplayResult result;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();  // tolerate CRLF logs
    }
    // Skip framing noise so hand-edited logs stay valid; anything else goes
    // through the session verbatim (including malformed requests, which get
    // ok=false responses — replayed rejections are part of the byte contract).
    std::string::size_type first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    const int64_t errors_before = session->errors();
    bool shutdown = false;
    out << session->HandleLine(line, &shutdown) << "\n";
    if (flush_each) {
      out.flush();
    }
    ++result.requests;
    result.errors += session->errors() - errors_before;
    if (shutdown) {
      result.shutdown = true;
      break;
    }
  }
  if (session->audit_failed()) {
    result.exit_code = 3;
  }
  return result;
}

void GenerateSyntheticRequests(int64_t count, uint64_t seed,
                               const SyntheticMixOptions& options,
                               std::ostream& out) {
  Rng rng(seed);
  const std::vector<ModelSpec>& zoo = GetModelZoo();
  OPTIMUS_CHECK(!zoo.empty());
  // Submitted ids start high so they never collide with scenario job ids.
  int next_submit_id = 1000000;
  int64_t snapshots = 0;
  for (int64_t i = 0; i < count; ++i) {
    const double u = rng.Uniform(0.0, 1.0);
    double edge = options.what_if_fraction;
    if (u < edge) {
      const ModelSpec& model =
          zoo[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(zoo.size()) - 1))];
      out << "{\"op\":\"what_if\",\"model\":\"" << model.name << "\"}\n";
      continue;
    }
    edge += options.advance_fraction;
    if (u < edge) {
      out << "{\"op\":\"advance\",\"dt_s\":" << options.advance_dt_s << "}\n";
      continue;
    }
    edge += options.submit_kill_fraction;
    if (u < edge) {
      const ModelSpec& model =
          zoo[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(zoo.size()) - 1))];
      const int id = next_submit_id++;
      out << "{\"op\":\"submit\",\"model\":\"" << model.name
          << "\",\"job_id\":" << id << "}\n";
      out << "{\"op\":\"kill\",\"job_id\":" << id << "}\n";
      ++i;  // the pair counts as two requests
      continue;
    }
    ++snapshots;
    if (options.prom_every > 0 && snapshots % options.prom_every == 0) {
      out << "{\"op\":\"metrics_snapshot\",\"format\":\"prom\"}\n";
    } else {
      out << "{\"op\":\"metrics_snapshot\"}\n";
    }
  }
}

}  // namespace optimus
