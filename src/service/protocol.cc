#include "src/service/protocol.h"

#include <cmath>
#include <sstream>

#include "src/common/logging.h"

namespace optimus {

namespace {

struct OpSpec {
  const char* name;
  bool mutating;
  // Keys beyond the common {"op", "id", "t_s"} set.
  std::vector<const char*> keys;
};

// The protocol: adding an op means adding a row here, a handler in
// session.cc, and a section in docs/SERVICE.md.
const std::vector<OpSpec>& Ops() {
  static const std::vector<OpSpec>* ops = new std::vector<OpSpec>{
      {"submit", true,
       {"model", "job_id", "arrival_s", "mode", "convergence_delta", "patience",
        "max_workers", "max_ps"}},
      {"kill", true, {"job_id"}},
      {"what_if", false,
       {"model", "job_id", "mode", "convergence_delta", "patience",
        "max_workers", "max_ps"}},
      {"advance", true, {"to_s", "dt_s"}},
      {"run", true, {}},
      {"metrics_snapshot", false, {"format", "scope", "include_profiling"}},
      {"snapshot", false, {}},
      {"restore", false, {"genesis", "journal"}},
      {"scenario_swap", false, {"scenario", "path"}},
      {"shutdown", false, {}},
  };
  return *ops;
}

const OpSpec* FindOp(const std::string& name) {
  for (const OpSpec& op : Ops()) {
    if (name == op.name) {
      return &op;
    }
  }
  return nullptr;
}

}  // namespace

const std::vector<std::string>& ServiceOps() {
  static const std::vector<std::string>* names = [] {
    auto* v = new std::vector<std::string>;
    for (const OpSpec& op : Ops()) {
      v->push_back(op.name);
    }
    return v;
  }();
  return *names;
}

bool IsKnownServiceOp(const std::string& op) { return FindOp(op) != nullptr; }

bool IsMutatingServiceOp(const std::string& op) {
  const OpSpec* spec = FindOp(op);
  return spec != nullptr && spec->mutating;
}

std::string PositionedError(const std::string& source, const JsonValue& at,
                            const std::string& message) {
  std::ostringstream os;
  os << source << ":" << at.line() << ":" << at.column() << ": " << message;
  return os.str();
}

bool ParseServiceRequest(const std::string& line, const std::string& source,
                         int64_t sequence, ServiceRequest* request,
                         std::string* error) {
  OPTIMUS_CHECK(request != nullptr);
  OPTIMUS_CHECK(error != nullptr);
  request->id = sequence;
  if (!ParseJson(line, source, &request->body, error)) {
    return false;
  }
  const JsonValue& body = request->body;
  if (!body.is_object()) {
    *error = PositionedError(source, body, "request must be a JSON object");
    return false;
  }
  const JsonValue* op = body.Find("op");
  if (op == nullptr) {
    *error = PositionedError(source, body, "missing required key \"op\"");
    return false;
  }
  if (!op->is_string()) {
    *error = PositionedError(source, *op, "\"op\" must be a string");
    return false;
  }
  request->op = op->AsString();
  const OpSpec* spec = FindOp(request->op);
  if (spec == nullptr) {
    std::string known;
    for (const std::string& name : ServiceOps()) {
      known += known.empty() ? name : "|" + name;
    }
    *error = PositionedError(
        source, *op, "unknown op \"" + request->op + "\" (expected " + known + ")");
    return false;
  }
  if (const JsonValue* id = body.Find("id")) {
    if (!id->is_number() || std::floor(id->AsDouble()) != id->AsDouble()) {
      *error = PositionedError(source, *id, "\"id\" must be an integer");
      return false;
    }
    request->id = id->AsInt();
  }
  if (const JsonValue* t = body.Find("t_s")) {
    if (!t->is_number()) {
      *error = PositionedError(source, *t, "\"t_s\" must be a number");
      return false;
    }
  }
  for (const std::string& key : body.Keys()) {
    if (key == "op" || key == "id" || key == "t_s") {
      continue;
    }
    bool allowed = false;
    for (const char* k : spec->keys) {
      if (key == k) {
        allowed = true;
        break;
      }
    }
    if (!allowed) {
      *error = PositionedError(source, *body.Find(key),
                               "unexpected key \"" + key + "\" for op \"" +
                                   request->op + "\"");
      return false;
    }
  }
  return true;
}

}  // namespace optimus
