#include "src/common/rng.h"

#include <cmath>

#include "src/common/logging.h"

namespace optimus {

namespace {

// SplitMix64 step; used to mix (seed, stream) into a child seed.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Rng Rng::Split(uint64_t stream) const { return Rng(Mix(seed_ ^ Mix(stream))); }

double Rng::Uniform(double lo, double hi) {
  OPTIMUS_CHECK_LE(lo, hi);
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  OPTIMUS_CHECK_LE(lo, hi);
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::LogNormalFactor(double sigma) {
  if (sigma <= 0.0) {
    return 1.0;
  }
  std::normal_distribution<double> dist(0.0, sigma);
  return std::exp(dist(engine_));
}

double Rng::Exponential(double rate) {
  OPTIMUS_CHECK_GT(rate, 0.0);
  std::exponential_distribution<double> dist(rate);
  return dist(engine_);
}

int64_t Rng::Poisson(double mean) {
  OPTIMUS_CHECK_GE(mean, 0.0);
  if (mean == 0.0) {
    return 0;
  }
  std::poisson_distribution<int64_t> dist(mean);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

}  // namespace optimus
