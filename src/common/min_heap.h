// Typed d-ary min-heap with a caller-supplied strict-weak "before" order.
//
// Both priority consumers in the codebase — the Optimus allocator's greedy
// marginal-gain heap and the discrete-event kernel's event queue — need the
// same thing: a deterministic priority queue whose tie-breaking is explicit
// in the comparator (no reliance on container internals), cheap to push into
// at bulk (the event queue holds one pending epoch event per running job),
// and cache-friendly to pop from. A 4-ary heap halves the tree depth of the
// binary std::priority_queue layout, which measurably helps the pop-heavy
// allocator loop at cluster scale, and `top()` + `pop()` are split so callers
// can batch same-key entries without copying.
//
// Determinism contract: the comparator must define a strict weak ordering;
// when it is a total order over the pushed elements (as the event queue's
// (time, kind, job_id) key is), pop order is fully determined by the element
// values — independent of push order, arity, or standard-library internals.

#ifndef SRC_COMMON_MIN_HEAP_H_
#define SRC_COMMON_MIN_HEAP_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "src/common/logging.h"

namespace optimus {

// Min-heap: `top()` is the element that `Before{}(a, b)` orders first.
template <typename T, typename Before, int Arity = 4>
class MinHeap {
  static_assert(Arity >= 2, "a heap needs at least two children per node");

 public:
  MinHeap() = default;
  explicit MinHeap(Before before) : before_(std::move(before)) {}

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  void reserve(size_t n) { heap_.reserve(n); }
  void clear() { heap_.clear(); }

  const T& top() const {
    OPTIMUS_CHECK(!heap_.empty()) << "top() on an empty heap";
    return heap_.front();
  }

  void push(T value) {
    heap_.push_back(std::move(value));
    SiftUp(heap_.size() - 1);
  }

  void pop() {
    OPTIMUS_CHECK(!heap_.empty()) << "pop() on an empty heap";
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) {
      SiftDown(0);
    }
  }

 private:
  void SiftUp(size_t i) {
    while (i > 0) {
      const size_t parent = (i - 1) / Arity;
      if (!before_(heap_[i], heap_[parent])) {
        break;
      }
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void SiftDown(size_t i) {
    const size_t n = heap_.size();
    while (true) {
      const size_t first_child = i * Arity + 1;
      if (first_child >= n) {
        break;
      }
      size_t best = first_child;
      const size_t last_child =
          first_child + Arity < n ? first_child + Arity : n;
      for (size_t c = first_child + 1; c < last_child; ++c) {
        if (before_(heap_[c], heap_[best])) {
          best = c;
        }
      }
      if (!before_(heap_[best], heap_[i])) {
        break;
      }
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  std::vector<T> heap_;
  Before before_;
};

}  // namespace optimus

#endif  // SRC_COMMON_MIN_HEAP_H_
