#include "src/common/json_writer.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/common/logging.h"

namespace optimus {

std::string EncodeJsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string EncodeJsonDouble(double value) {
  if (!std::isfinite(value)) {
    return "null";  // JSON has no NaN/Inf
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string CompactJson(const std::string& encoded) {
  std::string out;
  out.reserve(encoded.size());
  bool in_string = false;
  for (size_t i = 0; i < encoded.size(); ++i) {
    const char c = encoded[i];
    if (in_string) {
      out += c;
      if (c == '\\' && i + 1 < encoded.size()) {
        out += encoded[++i];
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      continue;
    }
    out += c;
    if (c == '"') {
      in_string = true;
    }
  }
  return out;
}

namespace {

// Re-indents an encoded value by `indent` levels: every newline in the
// encoding gets 2 * indent extra leading spaces. Encoded values are produced
// at depth 0, so this is what nests them under a deeper key.
std::string Reindent(const std::string& encoded, int indent) {
  if (indent <= 0) {
    return encoded;
  }
  const std::string pad(2 * static_cast<size_t>(indent), ' ');
  std::string out;
  for (char c : encoded) {
    out += c;
    if (c == '\n') {
      out += pad;
    }
  }
  return out;
}

}  // namespace

void JsonObject::SetRaw(const std::string& key, std::string encoded) {
  for (auto& entry : entries_) {
    if (entry.first == key) {
      entry.second = std::move(encoded);
      return;
    }
  }
  entries_.emplace_back(key, std::move(encoded));
}

void JsonObject::Set(const std::string& key, double value) {
  SetRaw(key, EncodeJsonDouble(value));
}

void JsonObject::Set(const std::string& key, int64_t value) {
  SetRaw(key, std::to_string(value));
}

void JsonObject::Set(const std::string& key, bool value) {
  SetRaw(key, value ? "true" : "false");
}

void JsonObject::Set(const std::string& key, const std::string& value) {
  SetRaw(key, EncodeJsonString(value));
}

void JsonObject::Set(const std::string& key, const char* value) {
  SetRaw(key, EncodeJsonString(value));
}

void JsonObject::Set(const std::string& key, const JsonObject& value) {
  SetRaw(key, value.ToString(0));
}

void JsonObject::Set(const std::string& key, const std::vector<JsonObject>& values) {
  if (values.empty()) {
    SetRaw(key, "[]");
    return;
  }
  std::string out = "[\n";
  for (size_t i = 0; i < values.size(); ++i) {
    out += "  " + Reindent(values[i].ToString(0), 1);
    out += i + 1 < values.size() ? ",\n" : "\n";
  }
  out += "]";
  SetRaw(key, std::move(out));
}

void JsonObject::Set(const std::string& key, const std::vector<double>& values) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += EncodeJsonDouble(values[i]);
  }
  out += "]";
  SetRaw(key, std::move(out));
}

void JsonObject::Set(const std::string& key, const std::vector<std::string>& values) {
  std::string out = "[";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += EncodeJsonString(values[i]);
  }
  out += "]";
  SetRaw(key, std::move(out));
}

std::string JsonObject::ToCompactString() const {
  std::string out = "{";
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += EncodeJsonString(entries_[i].first) + ":" + CompactJson(entries_[i].second);
  }
  out += "}";
  return out;
}

std::string JsonObject::ToString(int indent) const {
  if (entries_.empty()) {
    return "{}";
  }
  const std::string pad(2 * static_cast<size_t>(indent) + 2, ' ');
  std::string out = "{\n";
  for (size_t i = 0; i < entries_.size(); ++i) {
    out += pad + EncodeJsonString(entries_[i].first) + ": " +
           Reindent(entries_[i].second, indent + 1);
    out += i + 1 < entries_.size() ? ",\n" : "\n";
  }
  out += std::string(2 * static_cast<size_t>(indent), ' ') + "}";
  return out;
}

namespace {

// Splits the text of a flat JSON object into ordered (key, raw value text)
// pairs with a string- and nesting-aware scanner. Returns false when the text
// is not a single top-level object (callers then overwrite the file).
bool ScanTopLevelSections(const std::string& text,
                          std::vector<std::pair<std::string, std::string>>* out) {
  size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
  };
  skip_ws();
  if (i >= text.size() || text[i] != '{') {
    return false;
  }
  ++i;
  skip_ws();
  if (i < text.size() && text[i] == '}') {
    return true;  // empty object
  }
  while (i < text.size()) {
    // Key.
    if (text[i] != '"') {
      return false;
    }
    std::string key;
    ++i;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) {
        key += text[i + 1];  // good enough for section names
        i += 2;
      } else {
        key += text[i++];
      }
    }
    if (i >= text.size()) {
      return false;
    }
    ++i;  // closing quote
    skip_ws();
    if (i >= text.size() || text[i] != ':') {
      return false;
    }
    ++i;
    skip_ws();
    // Value: scan to the comma or brace that closes it at depth 0.
    const size_t value_start = i;
    int depth = 0;
    bool in_string = false;
    for (; i < text.size(); ++i) {
      const char c = text[i];
      if (in_string) {
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          in_string = false;
        }
        continue;
      }
      if (c == '"') {
        in_string = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        if (depth == 0) {
          break;  // the object's closing brace
        }
        --depth;
      } else if (c == ',' && depth == 0) {
        break;
      }
    }
    if (i >= text.size()) {
      return false;
    }
    std::string value = text.substr(value_start, i - value_start);
    while (!value.empty() && std::isspace(static_cast<unsigned char>(value.back()))) {
      value.pop_back();
    }
    out->emplace_back(std::move(key), std::move(value));
    if (text[i] == '}') {
      return true;
    }
    ++i;  // comma
    skip_ws();
  }
  return false;
}

}  // namespace

bool WriteBenchJsonSection(const std::string& path, const std::string& section,
                           const JsonObject& value) {
  std::vector<std::pair<std::string, std::string>> sections;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      const std::string text = buffer.str();
      if (!text.empty() && !ScanTopLevelSections(text, &sections)) {
        OPTIMUS_LOG(Warning) << path << " is not a flat JSON object; overwriting";
        sections.clear();
      }
    }
  }

  const std::string encoded = value.ToString(1);
  bool replaced = false;
  for (auto& entry : sections) {
    if (entry.first == section) {
      entry.second = encoded;
      replaced = true;
      break;
    }
  }
  if (!replaced) {
    sections.emplace_back(section, encoded);
  }

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    OPTIMUS_LOG(Warning) << "cannot write " << path;
    return false;
  }
  out << "{\n";
  for (size_t i = 0; i < sections.size(); ++i) {
    out << "  " << EncodeJsonString(sections[i].first) << ": " << sections[i].second;
    out << (i + 1 < sections.size() ? ",\n" : "\n");
  }
  out << "}\n";
  return out.good();
}

}  // namespace optimus
