// Lightweight logging and assertion macros for the Optimus library.
//
// The library is deterministic and single-threaded by design (the simulator is
// a discrete-time model), so a simple unsynchronized stderr logger suffices.

#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace optimus {

enum class LogSeverity {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Process-wide minimum severity. Messages below this level are dropped.
LogSeverity GetMinLogSeverity();
void SetMinLogSeverity(LogSeverity severity);

const char* LogSeverityName(LogSeverity severity);

// Accumulates one log line and emits it (with file:line prefix) on
// destruction. A kFatal message aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when a log statement is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// Turns an ostream expression into void so CHECK can live in a ternary while
// still supporting `OPTIMUS_CHECK(x) << "context"`.
class LogVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace optimus

#define OPTIMUS_LOG(severity)                                                        \
  ::optimus::LogMessage(::optimus::LogSeverity::k##severity, __FILE__, __LINE__) \
      .stream()

#define OPTIMUS_CHECK(condition)                                              \
  (condition) ? (void)0                                                       \
              : ::optimus::LogVoidify() &                                     \
                    ::optimus::LogMessage(::optimus::LogSeverity::kFatal,     \
                                          __FILE__, __LINE__)                 \
                            .stream()                                         \
                        << "Check failed: " #condition " "

#define OPTIMUS_CHECK_OP(op, a, b) OPTIMUS_CHECK((a)op(b))
#define OPTIMUS_CHECK_EQ(a, b) OPTIMUS_CHECK_OP(==, a, b)
#define OPTIMUS_CHECK_NE(a, b) OPTIMUS_CHECK_OP(!=, a, b)
#define OPTIMUS_CHECK_LT(a, b) OPTIMUS_CHECK_OP(<, a, b)
#define OPTIMUS_CHECK_LE(a, b) OPTIMUS_CHECK_OP(<=, a, b)
#define OPTIMUS_CHECK_GT(a, b) OPTIMUS_CHECK_OP(>, a, b)
#define OPTIMUS_CHECK_GE(a, b) OPTIMUS_CHECK_OP(>=, a, b)

#endif  // SRC_COMMON_LOGGING_H_
