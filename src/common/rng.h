// Deterministic random number generation.
//
// All randomness in the library flows through Rng instances that are seeded
// explicitly, so every simulation run is reproducible from its seed. Child
// generators can be split off deterministically so that adding randomness to
// one subsystem does not perturb the stream seen by another.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace optimus {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed), seed_(seed) {}

  // Derives an independent child generator. The same (seed, stream) pair
  // always yields the same child sequence.
  Rng Split(uint64_t stream) const;

  uint64_t seed() const { return seed_; }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  // Log-normal such that the multiplicative factor has median 1 and the given
  // sigma in log space. Useful for runtime noise that must stay positive.
  double LogNormalFactor(double sigma);

  // Exponential with the given rate (events per unit time).
  double Exponential(double rate);

  // Poisson-distributed count with the given mean.
  int64_t Poisson(double mean);

  // True with probability p.
  bool Bernoulli(double p);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  uint64_t seed_;
};

}  // namespace optimus

#endif  // SRC_COMMON_RNG_H_
