// Small statistics helpers shared by the performance models, the simulator
// metrics pipeline, and the benchmark harnesses.

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace optimus {

// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& values);

// Sample standard deviation (n-1); 0 when fewer than two samples.
double StdDev(const std::vector<double>& values);

// Median using linear interpolation between the two middle samples.
double Median(std::vector<double> values);

// p-th percentile (p in [0, 100]) with linear interpolation; values copied.
double Percentile(std::vector<double> values, double p);

// Estimated q-quantile (q in [0, 1]) of a fixed-bucket histogram with
// ascending upper-inclusive `upper_bounds` and per-bucket `bucket_counts`
// (one extra trailing entry for the +Inf overflow bucket). The estimate
// interpolates linearly inside the owning bucket, taking the first bucket's
// lower edge as 0 (or its bound, when that bound is negative); quantiles that
// land in the overflow bucket return the last finite bound — Prometheus
// histogram_quantile conventions. Returns 0 for an empty histogram.
double HistogramQuantile(const std::vector<double>& upper_bounds,
                         const std::vector<int64_t>& bucket_counts, double q);

// Sum of a vector; 0 for an empty vector.
double Sum(const std::vector<double>& values);

// Maximum element; -inf for an empty vector.
double Max(const std::vector<double>& values);

// Minimum element; +inf for an empty vector.
double Min(const std::vector<double>& values);

}  // namespace optimus

#endif  // SRC_COMMON_STATS_H_
