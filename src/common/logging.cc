#include "src/common/logging.h"

#include <cstring>

namespace optimus {

namespace {
LogSeverity g_min_severity = LogSeverity::kWarning;
}  // namespace

LogSeverity GetMinLogSeverity() { return g_min_severity; }

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }

const char* LogSeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "DEBUG";
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARNING";
    case LogSeverity::kError:
      return "ERROR";
    case LogSeverity::kFatal:
      return "FATAL";
  }
  return "UNKNOWN";
}

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (severity_ >= g_min_severity || severity_ == LogSeverity::kFatal) {
    const char* basename = std::strrchr(file_, '/');
    basename = basename != nullptr ? basename + 1 : file_;
    std::cerr << "[" << LogSeverityName(severity_) << " " << basename << ":" << line_
              << "] " << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace optimus
