#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace optimus {

void RunningStat::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) {
    return 0.0;
  }
  const double mean = Mean(values);
  double m2 = 0.0;
  for (double v : values) {
    m2 += (v - mean) * (v - mean);
  }
  return std::sqrt(m2 / static_cast<double>(values.size() - 1));
}

double Median(std::vector<double> values) { return Percentile(std::move(values), 50.0); }

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  OPTIMUS_CHECK_GE(p, 0.0);
  OPTIMUS_CHECK_LE(p, 100.0);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double HistogramQuantile(const std::vector<double>& upper_bounds,
                         const std::vector<int64_t>& bucket_counts, double q) {
  OPTIMUS_CHECK_GE(q, 0.0);
  OPTIMUS_CHECK_LE(q, 1.0);
  OPTIMUS_CHECK_EQ(bucket_counts.size(), upper_bounds.size() + 1)
      << "bucket_counts must carry one +Inf overflow entry";
  int64_t total = 0;
  for (int64_t c : bucket_counts) {
    total += c;
  }
  if (total == 0) {
    return 0.0;
  }
  // Target rank within the cumulative distribution.
  const double rank = q * static_cast<double>(total);
  int64_t cumulative = 0;
  for (size_t b = 0; b < bucket_counts.size(); ++b) {
    const int64_t before = cumulative;
    cumulative += bucket_counts[b];
    if (static_cast<double>(cumulative) < rank) {
      continue;
    }
    if (b == upper_bounds.size()) {
      return upper_bounds.back();  // overflow bucket: clamp to the last bound
    }
    const double hi = upper_bounds[b];
    const double lo =
        b > 0 ? upper_bounds[b - 1] : std::min(0.0, hi);
    if (bucket_counts[b] == 0) {
      return hi;
    }
    const double frac =
        (rank - static_cast<double>(before)) / static_cast<double>(bucket_counts[b]);
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return upper_bounds.back();
}

double Sum(const std::vector<double>& values) {
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum;
}

double Max(const std::vector<double>& values) {
  double best = -std::numeric_limits<double>::infinity();
  for (double v : values) {
    best = std::max(best, v);
  }
  return best;
}

double Min(const std::vector<double>& values) {
  double best = std::numeric_limits<double>::infinity();
  for (double v : values) {
    best = std::min(best, v);
  }
  return best;
}

}  // namespace optimus
