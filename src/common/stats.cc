#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace optimus {

void RunningStat::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) {
    return 0.0;
  }
  const double mean = Mean(values);
  double m2 = 0.0;
  for (double v : values) {
    m2 += (v - mean) * (v - mean);
  }
  return std::sqrt(m2 / static_cast<double>(values.size() - 1));
}

double Median(std::vector<double> values) { return Percentile(std::move(values), 50.0); }

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  OPTIMUS_CHECK_GE(p, 0.0);
  OPTIMUS_CHECK_LE(p, 100.0);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Sum(const std::vector<double>& values) {
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum;
}

double Max(const std::vector<double>& values) {
  double best = -std::numeric_limits<double>::infinity();
  for (double v : values) {
    best = std::max(best, v);
  }
  return best;
}

double Min(const std::vector<double>& values) {
  double best = std::numeric_limits<double>::infinity();
  for (double v : values) {
    best = std::min(best, v);
  }
  return best;
}

}  // namespace optimus
