// ASCII table and CSV rendering for benchmark output.
//
// Every bench binary regenerates one paper table or figure as rows printed to
// stdout; TablePrinter keeps that output aligned and uniform across benches.

#ifndef SRC_COMMON_TABLE_H_
#define SRC_COMMON_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace optimus {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Appends one row; the number of cells must equal the number of headers.
  void AddRow(std::vector<std::string> cells);

  // Number formatting helper: fixed decimals, trailing zeros kept.
  static std::string FormatDouble(double value, int decimals = 3);

  // Renders the table with a header rule and column alignment.
  void Print(std::ostream& os) const;

  // Renders as CSV (no quoting; intended for plain numeric/label cells).
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a section banner ("== title ==") used to delimit figures within a
// bench binary's stdout.
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace optimus

#endif  // SRC_COMMON_TABLE_H_
