#include "src/common/flags.h"

#include <cstdlib>

#include "src/common/logging.h"

namespace optimus {

namespace {

// "--no-foo" -> ("foo", "false"); "--foo" -> ("foo", ""); "--a=b" -> ("a","b").
bool ParseToken(const std::string& token, std::string* key, std::string* value,
                bool* had_value) {
  if (token.size() < 3 || token[0] != '-' || token[1] != '-') {
    return false;
  }
  std::string body = token.substr(2);
  const size_t eq = body.find('=');
  if (eq != std::string::npos) {
    *key = body.substr(0, eq);
    *value = body.substr(eq + 1);
    *had_value = true;
    return true;
  }
  if (body.rfind("no-", 0) == 0) {
    *key = body.substr(3);
    *value = "false";
    *had_value = true;
    return true;
  }
  *key = body;
  value->clear();
  *had_value = false;
  return true;
}

}  // namespace

FlagParser::FlagParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    std::string key;
    std::string value;
    bool had_value = false;
    if (!ParseToken(token, &key, &value, &had_value)) {
      positional_.push_back(token);
      continue;
    }
    if (!had_value) {
      // `--key value` form: consume the next token unless it is a flag.
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    values_[key] = value;
    consumed_[key] = false;
  }
}

bool FlagParser::Has(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return false;
  }
  consumed_[key] = true;
  return true;
}

std::string FlagParser::GetString(const std::string& key, const std::string& def) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  consumed_[key] = true;
  return it->second;
}

int64_t FlagParser::GetInt(const std::string& key, int64_t def) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  consumed_[key] = true;
  char* end = nullptr;
  const int64_t value = std::strtoll(it->second.c_str(), &end, 10);
  OPTIMUS_CHECK(end != nullptr && *end == '\0' && !it->second.empty())
      << "flag --" << key << " expects an integer, got '" << it->second << "'";
  return value;
}

double FlagParser::GetDouble(const std::string& key, double def) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  consumed_[key] = true;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  OPTIMUS_CHECK(end != nullptr && *end == '\0' && !it->second.empty())
      << "flag --" << key << " expects a number, got '" << it->second << "'";
  return value;
}

bool FlagParser::GetBool(const std::string& key, bool def) const {
  auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  consumed_[key] = true;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v.empty()) {
    return true;
  }
  if (v == "false" || v == "0" || v == "no") {
    return false;
  }
  OPTIMUS_LOG(Fatal) << "flag --" << key << " expects a boolean, got '" << v << "'";
  return def;
}

std::vector<std::string> FlagParser::UnconsumedKeys() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    if (!consumed_[key]) {
      out.push_back(key);
    }
  }
  return out;
}

}  // namespace optimus
