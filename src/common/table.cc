#include "src/common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "src/common/logging.h"

namespace optimus {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  OPTIMUS_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  OPTIMUS_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::FormatDouble(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
    }
    os << "\n";
  };

  print_row(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        os << ",";
      }
      os << row[c];
    }
    os << "\n";
  };
  print_row(headers_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void PrintBanner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace optimus
