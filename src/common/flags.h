// Minimal --key=value command-line flag parsing for the CLI tools.
//
// Supports `--key=value`, `--key value`, and boolean `--key` /
// `--no-key` forms. Unrecognized flags are collected so tools can reject
// typos instead of silently ignoring them.

#ifndef SRC_COMMON_FLAGS_H_
#define SRC_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace optimus {

class FlagParser {
 public:
  // Parses argv; positional (non --) arguments are kept in order.
  FlagParser(int argc, const char* const* argv);

  bool Has(const std::string& key) const;

  // Typed getters with defaults. A present-but-malformed value is fatal.
  std::string GetString(const std::string& key, const std::string& def) const;
  int64_t GetInt(const std::string& key, int64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  bool GetBool(const std::string& key, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Keys that were parsed but never queried; call after all Get*s to reject
  // unknown flags.
  std::vector<std::string> UnconsumedKeys() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
  std::vector<std::string> positional_;
};

}  // namespace optimus

#endif  // SRC_COMMON_FLAGS_H_
