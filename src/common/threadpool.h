// A small fixed-size thread pool for deterministic parallelism.
//
// The library's parallel call sites (experiment repeats, per-arrival speed
// pre-run sampling) are embarrassingly parallel: each unit of work owns its
// state — in particular its own split RNG — and writes its result to an
// index-owned slot. Under that contract, running the units on N threads and
// committing results in index order is bitwise identical to the serial path,
// for any N. The pool provides the mechanics; the contract is the caller's.
//
// Pools constructed with num_threads <= 1 spawn no threads at all: Submit()
// runs the task inline on the calling thread and ParallelFor() degenerates to
// a plain loop, so single-threaded behavior is exactly the pre-pool code.
//
// Tasks must not throw: an exception escaping a worker thread terminates the
// process (as it would from any detached std::thread).

#ifndef SRC_COMMON_THREADPOOL_H_
#define SRC_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace optimus {

// Thread count used when a caller asks for the environment default: the value
// of OPTIMUS_THREADS when set to a positive integer, otherwise 1 (serial).
// Re-read from the environment on every call.
int DefaultThreadCount();

class ThreadPool {
 public:
  // Spawns `num_threads` workers; values <= 1 create an inline (threadless)
  // pool.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Number of worker threads (0 for an inline pool).
  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues one task (runs it inline for a threadless pool).
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void Wait();

  // Runs fn(0) .. fn(n - 1), distributing indices over the workers via a
  // shared counter, and blocks until all have finished. Result commits must
  // go to index-owned slots; under that contract the outcome is identical to
  // the serial loop regardless of thread count.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  int64_t in_flight_ = 0;  // queued + currently executing
  bool shutting_down_ = false;
};

}  // namespace optimus

#endif  // SRC_COMMON_THREADPOOL_H_
