#include "src/common/threadpool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>

#include "src/common/logging.h"

namespace optimus {

int DefaultThreadCount() {
  const char* env = std::getenv("OPTIMUS_THREADS");
  if (env == nullptr || *env == '\0') {
    return 1;
  }
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || value < 1) {
    OPTIMUS_LOG(Warning) << "ignoring malformed OPTIMUS_THREADS='" << env << "'";
    return 1;
  }
  return static_cast<int>(value);
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 1) {
    return;  // inline pool
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  if (workers_.empty()) {
    return;
  }
  Wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  OPTIMUS_CHECK(task != nullptr);
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    OPTIMUS_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  if (workers_.empty()) {
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(int64_t n, const std::function<void(int64_t)>& fn) {
  if (n <= 0) {
    return;
  }
  if (workers_.empty() || n == 1) {
    for (int64_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  // One puller task per worker; each pulls the next unclaimed index. Which
  // thread runs which index is nondeterministic, but per-index work is
  // independent and results land in index-owned slots, so the outcome is not.
  auto next = std::make_shared<std::atomic<int64_t>>(0);
  const int pullers =
      static_cast<int>(std::min<int64_t>(n, static_cast<int64_t>(workers_.size())));
  for (int t = 0; t < pullers; ++t) {
    Submit([next, n, &fn] {
      for (int64_t i = (*next)++; i < n; i = (*next)++) {
        fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace optimus
