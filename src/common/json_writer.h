// Minimal deterministic JSON emission, shared by the bench harnesses and the
// scenario sweep runner.
//
// JsonObject is an ordered object builder: keys are emitted in insertion
// order, setting an existing key replaces its value in place, and doubles are
// formatted with 17 significant digits — for a fixed input the emitted bytes
// are fixed too, which is what the sweep determinism tests compare bitwise.

#ifndef SRC_COMMON_JSON_WRITER_H_
#define SRC_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace optimus {

// JSON-escapes `s` and wraps it in double quotes.
std::string EncodeJsonString(const std::string& s);

// Shortest-round-trip 17-significant-digit encoding; non-finite values are
// emitted as null (JSON has no NaN/Inf).
std::string EncodeJsonDouble(double value);

// Strips insignificant whitespace from already-encoded JSON text (string
// literals are preserved verbatim). Used to turn the pretty-printed encodings
// into single-line NDJSON payloads.
std::string CompactJson(const std::string& encoded);

// A minimal ordered JSON object builder: keys are emitted in insertion order,
// setting an existing key replaces its value in place. Values are encoded on
// Set, so nested objects/arrays are copied by value.
class JsonObject {
 public:
  void Set(const std::string& key, double value);
  void Set(const std::string& key, int64_t value);
  void Set(const std::string& key, int value) { Set(key, static_cast<int64_t>(value)); }
  void Set(const std::string& key, bool value);
  void Set(const std::string& key, const std::string& value);
  void Set(const std::string& key, const char* value);
  void Set(const std::string& key, const JsonObject& value);
  void Set(const std::string& key, const std::vector<JsonObject>& values);
  void Set(const std::string& key, const std::vector<double>& values);
  void Set(const std::string& key, const std::vector<std::string>& values);

  // Serializes with two-space indentation; `indent` is the starting depth.
  std::string ToString(int indent = 0) const;

  // Single-line serialization with no whitespace, for NDJSON streams: one
  // response per line means a reader can frame on '\n' alone.
  std::string ToCompactString() const;

 private:
  void SetRaw(const std::string& key, std::string encoded);

  std::vector<std::pair<std::string, std::string>> entries_;  // key -> encoded
};

// Merges `value` into the JSON file at `path` as the top-level key `section`:
// other top-level sections already in the file are preserved verbatim, an
// existing `section` is replaced, and a missing file is created. A file that
// does not scan as a flat JSON object is overwritten (with a warning) so a
// corrupt file never wedges the writers. Returns false if the file could not
// be written.
bool WriteBenchJsonSection(const std::string& path, const std::string& section,
                           const JsonObject& value);

}  // namespace optimus

#endif  // SRC_COMMON_JSON_WRITER_H_
