// Event-engine run loop (SimEngine::kEvents); see src/sim/event_kernel.h for
// the kernel design and docs/ALGORITHMS.md §16 for the determinism argument
// and the parity contract against the interval engine.
//
// Structure: simulated activity is a deterministic event queue. Scheduling
// rounds stay periodic (one kRound per interval, Algorithm-1 cadence) and
// reuse the interval engine's fault pipeline, scheduler round, and auditor
// verbatim; between rounds each job advances only at its own analytically
// computed epoch-completion events, so untouched jobs cost zero work. Every
// RNG draw flows through job-owned streams in event order and every
// shared-state effect is buffered per event and merged serially in key
// order, keeping outputs bitwise identical for any --threads.

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/sim/simulator.h"

namespace optimus {

void Simulator::EnqueueStaticEvents() {
  events_.reserve((jobs_.size() + pending_remaining()) * 2 + 64);
  for (const auto& jr : jobs_) {
    if (jr == nullptr) {
      continue;
    }
    events_.Push({jr->job.spec().arrival_time_s, SimEventKind::kArrival,
                  jr->job.id(), 0});
  }
  // Streaming admission: unmaterialized specs get their arrival events up
  // front (the times are known; only the JobRuntime construction is deferred
  // to the event itself, via ActivateArrivals -> MaterializeArrivals).
  for (size_t i = pending_next_; i < pending_specs_.size(); ++i) {
    events_.Push({pending_specs_[i].arrival_time_s, SimEventKind::kArrival,
                  pending_specs_[i].id, 0});
  }
  // One kFaultPlan event per distinct scripted edge time; the handler applies
  // every transition due at that instant, so duplicates would be redundant.
  std::vector<double> edges;
  for (const ServerOutage& outage : config_.fault.plan.outages) {
    edges.push_back(outage.start_s);
    if (std::isfinite(outage.recover_s)) {
      edges.push_back(outage.recover_s);
    }
  }
  for (const SlowdownBurst& burst : config_.fault.plan.slowdowns) {
    edges.push_back(burst.start_s);
    edges.push_back(burst.end_s);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  for (double t : edges) {
    events_.Push({t, SimEventKind::kFaultPlan, -1, 0});
  }
  events_.Push({0.0, SimEventKind::kRound, -1, 0});
}

void Simulator::SettleJob(JobRuntime* jr, double t) {
  if (!jr->seg_active) {
    return;
  }
  const double dt = t - jr->seg_anchor_s;
  if (dt <= 0.0) {
    return;
  }
  const double stalled = jr->job.ConsumeStall(dt);
  const double train = dt - stalled;
  if (train > 0.0 && jr->seg_speed > 0.0) {
    // No epoch boundary lies inside (anchor, t) — boundaries get their own
    // events — so cap the advance at the next boundary to keep floating-point
    // drift from overshooting an unobserved epoch.
    const double spe = static_cast<double>(jr->job.spec().StepsPerEpoch());
    const double cap = std::max(
        0.0, static_cast<double>(jr->seg_next_epoch) * spe - jr->job.steps_done());
    jr->job.AdvanceSteps(std::min(train * jr->seg_speed, cap));
    // Live tasks made progress: reset the relaunch-backoff streak, as the
    // interval engine does for any interval with training time.
    jr->consecutive_evictions = 0;
    jr->backoff_until_s = -1.0;
    jr->ran_since_round = true;
  }
  jr->seg_anchor_s = t;
}

void Simulator::HandleEpochEvent(JobRuntime* jr, double t, EpochOutcome* out) {
  Job& job = jr->job;
  const JobSpec& spec = job.spec();
  const double spe = static_cast<double>(spec.StepsPerEpoch());
  const int64_t e = jr->seg_next_epoch;

  // Settle to the boundary. The event time was computed as
  // anchor + stall + (boundary - steps) / speed, so the stall is consumed en
  // route and the advance lands exactly on the boundary (forced, to keep the
  // boundary arithmetic free of accumulated rounding).
  const double dt = t - jr->seg_anchor_s;
  if (dt > 0.0) {
    jr->job.ConsumeStall(dt);
  }
  job.AdvanceSteps(std::max(0.0, static_cast<double>(e) * spe - job.steps_done()));
  jr->seg_anchor_s = t;
  jr->consecutive_evictions = 0;
  jr->backoff_until_s = -1.0;
  jr->ran_since_round = true;

  const double epoch_loss =
      jr->curve.TrueLossAtEpoch(static_cast<double>(e)) *
      jr->rng.LogNormalFactor(spec.model->loss.noise_sd * 0.3);
  const bool completed = job.RecordEpochLoss(epoch_loss);

  if (!config_.oracle_estimates) {
    // Observe per-step losses across the completed epoch. Feeding is the hot
    // path of the interval engine's advance; here it is a handful of samples
    // per epoch and the fits are deferred to the round's model refresh.
    const int n = config_.conv_samples_per_epoch;
    const double epoch_start = static_cast<double>(e - 1) * spe;
    for (int i = 1; i <= n; ++i) {
      const double step = epoch_start + spe * i / n;
      if (step <= 0.0) {
        continue;
      }
      const double sample =
          jr->curve.SampleLossAtStep(static_cast<int64_t>(step), &jr->rng);
      jr->conv->AddSample(step, sample);
      if (jr->multi_conv != nullptr) {
        jr->multi_conv->AddSample(step, sample);
      }
    }
  }

  if (spec.lr_drop.has_value() && !jr->lr_drop_handled &&
      job.EpochsDone() >= spec.lr_drop->epoch) {
    jr->lr_drop_handled = true;
    if (jr->conv != nullptr) {
      jr->conv->Reset();
    }
    if (jr->multi_conv != nullptr) {
      jr->multi_conv->Reset();
    }
    out->lr_drop = true;
  }
  out->event_ps = job.num_ps();
  out->event_workers = job.num_workers();

  if (completed) {
    // Exact analytic completion time — no interval-boundary quantization.
    job.MarkCompleted(t);
    jr->seg_active = false;
    ++jr->gen;
    out->completed = true;
    out->completed_epoch = e;
  } else {
    jr->seg_next_epoch = e + 1;
    out->push_next = true;
    out->next_time_s = t + job.stall_remaining_s() + spe / jr->seg_speed;
  }
}

void Simulator::ProcessEpochBatch(const std::vector<SimKernelEvent>& batch) {
  const double t = batch.front().time_s;

  // Stale filter (serial, cheap): events whose generation no longer matches
  // were superseded by a reschedule, an eviction, or completion.
  std::vector<JobRuntime*> live;
  live.reserve(batch.size());
  {
    ScopedTimer timer(&profiler_, phase_events_);
    for (const SimKernelEvent& event : batch) {
      const auto it = job_index_.find(static_cast<int>(event.job_id));
      OPTIMUS_CHECK(it != job_index_.end());
      JobRuntime* jr = jobs_[it->second].get();
      // A retired job's slot is null; any epoch event it left behind is stale
      // by definition (retirement requires completion, which bumped the gen).
      if (jr == nullptr || !jr->seg_active || jr->gen != event.gen) {
        ++events_stale_dropped_;
        continue;
      }
      live.push_back(jr);
    }
  }
  if (live.empty()) {
    return;
  }

  // Fan the per-job handlers out over the pool: each touches only job-owned
  // state and buffers shared-state effects in its index-owned slot; the merge
  // below applies them serially in event (ascending job id) order.
  std::vector<EpochOutcome> outcomes(live.size());
  {
    ScopedTimer timer(&profiler_, phase_events_);
    if (pool_ != nullptr && live.size() > 1) {
      pool_->ParallelFor(static_cast<int64_t>(live.size()),
                         [&](int64_t i) { HandleEpochEvent(live[i], t, &outcomes[i]); });
    } else {
      for (size_t i = 0; i < live.size(); ++i) {
        HandleEpochEvent(live[i], t, &outcomes[i]);
      }
    }

    for (size_t i = 0; i < live.size(); ++i) {
      JobRuntime* jr = live[i];
      const EpochOutcome& out = outcomes[i];
      event_counts_.Note(SimEventKind::kEpoch);
      if (out.completed) {
        ++completed_;
        ++metrics_.completed_jobs;
        auditor_.ClearPlacement(jr->job.id());
        HarvestPlacement(&jr->job);
        trace_.RecordEpochs(t, SimEventType::kCompleted, jr->job.id(),
                            out.event_ps, out.event_workers, out.completed_epoch);
        flight_.Record(t, FlightEventKind::kCompleted, jr->job.id(), out.event_ps,
                       out.event_workers,
                       static_cast<double>(out.completed_epoch));
        if (m_.jct_seconds != nullptr) {
          m_.jct_seconds->Record(jr->job.Jct());
          m_.completed_epochs->Record(static_cast<double>(out.completed_epoch));
        }
      }
      if (out.lr_drop) {
        trace_.Record(t, SimEventType::kLearningRateDrop, jr->job.id(),
                      out.event_ps, out.event_workers);
      }
      if (out.push_next) {
        events_.Push({out.next_time_s, SimEventKind::kEpoch, jr->job.id(),
                      jr->gen});
      }
    }
  }
}

void Simulator::HandleFaultPlanEvent(double t) {
  const FaultInjector::IntervalFaults faults = faults_->Advance(t);
  if (!faults.recovered.empty() || !faults.crashed.empty()) {
    placeable_cap_valid_ = false;  // availability changed
  }
  const bool slow_changed = faults.slow_factor != cluster_slow_factor_;
  if (slow_changed) {
    cluster_slow_factor_ = faults.slow_factor;
    trace_.RecordFactor(t, SimEventType::kSlowdown, kClusterEventJobId,
                        cluster_slow_factor_);
    flight_.Record(t, FlightEventKind::kSlowdown, -1, 0, 0,
                   cluster_slow_factor_);
  }
  for (int sid : faults.recovered) {
    servers_[static_cast<size_t>(sid)].SetAvailable(true);
    ++metrics_.server_recoveries;
    trace_.RecordServer(t, SimEventType::kServerRecovered, kClusterEventJobId,
                        sid);
    flight_.Record(t, FlightEventKind::kServerRecovered, -1, sid);
  }
  for (int sid : faults.crashed) {
    servers_[static_cast<size_t>(sid)].SetAvailable(false);
    ++metrics_.server_crashes;
    trace_.RecordServer(t, SimEventType::kServerCrash, kClusterEventJobId, sid);
    flight_.Record(t, FlightEventKind::kServerCrash, -1, sid);
  }

  // Evict at the exact crash instant: a job that loses tasks mid-round stops
  // training then, not at the next boundary (EvictJob settles nothing — the
  // rollback discards the un-checkpointed span anyway — and deactivates the
  // job's segment, invalidating its pending epoch event).
  bool evicted_any = false;
  if (faults_->servers_down() > 0) {
    for (auto& jr : jobs_) {
      if (jr == nullptr || !jr->arrived ||
          jr->job.state() == JobState::kCompleted ||
          jr->job.placement().empty()) {
        continue;
      }
      const JobPlacement& placement = jr->job.placement();
      bool hit = false;
      std::string detail;
      placement.ForEachUsed([&](size_t s, int w_k, int p_k) {
        if (hit || (w_k <= 0 && p_k <= 0)) {
          return;
        }
        if (!servers_[s].available()) {
          hit = true;
          detail = "server=" + std::to_string(servers_[s].id());
        }
      });
      if (hit) {
        // Settle to the crash instant first so progress up to t is kept for
        // jobs whose checkpoint is fresher than their anchor.
        SettleJob(jr.get(), t);
        EvictJob(jr.get(), detail);
        evicted_any = true;
      }
    }
  }

  // Evicted jobs released their flows: re-solve the fabric so survivors run
  // at the freed-link bandwidths from the crash instant onward, re-anchoring
  // their segments exactly like a slowdown edge. No-op under the flat model.
  const bool bw_changed = evicted_any && RefreshNetwork();

  // A slowdown edge changes every active segment's speed: settle each at the
  // old speed up to t, recompute with the same round noise draw, reschedule.
  if (slow_changed || bw_changed) {
    for (auto& jr : jobs_) {
      if (jr == nullptr || !jr->seg_active) {
        continue;
      }
      SettleJob(jr.get(), t);
      jr->seg_speed = TrueSpeed(*jr) * jr->seg_noise * cluster_slow_factor_;
      ++jr->gen;
      if (jr->seg_speed > 0.0) {
        const double spe = static_cast<double>(jr->job.spec().StepsPerEpoch());
        const double next_time =
            t + jr->job.stall_remaining_s() +
            (static_cast<double>(jr->seg_next_epoch) * spe - jr->job.steps_done()) /
                jr->seg_speed;
        events_.Push({next_time, SimEventKind::kEpoch, jr->job.id(), jr->gen});
      } else {
        jr->seg_active = false;
      }
    }
  }
}

void Simulator::RefreshModels() {
  if (config_.oracle_estimates) {
    for (auto& jr : jobs_) {
      if (jr != nullptr) {
        jr->ran_since_round = false;
      }
    }
    return;
  }
  std::vector<JobRuntime*> dirty;
  for (auto& jr : jobs_) {
    if (jr != nullptr && jr->ran_since_round) {
      dirty.push_back(jr.get());
      jr->ran_since_round = false;
    }
  }
  // One speed-model measurement per trained span (the interval engine's
  // cadence) plus the deferred convergence fits. All per-job-owned state.
  auto refresh = [&](JobRuntime* jr) {
    jr->speed->AddSample(jr->seg_sample_ps, jr->seg_sample_workers,
                         jr->seg_sample_speed);
    jr->speed->Fit();
    jr->conv->Fit();
    if (jr->multi_conv != nullptr) {
      jr->multi_conv->Fit();
    }
  };
  if (pool_ != nullptr && dirty.size() > 1) {
    pool_->ParallelFor(static_cast<int64_t>(dirty.size()),
                       [&](int64_t i) { refresh(dirty[i]); });
  } else {
    for (JobRuntime* jr : dirty) {
      refresh(jr);
    }
  }
}

void Simulator::RebuildSegments() {
  const double t = now_s_;
  // Every pending epoch event dies here (generation bump); running jobs get a
  // fresh segment — new noise draw, current allocation/placement/slowdown —
  // and exactly one new epoch event each.
  std::vector<JobRuntime*> running;
  for (auto& jr : jobs_) {
    if (jr == nullptr || !jr->arrived ||
        jr->job.state() == JobState::kCompleted) {
      continue;
    }
    ++jr->gen;
    jr->seg_active = false;
    // All-reduce jobs run with zero PS tasks; workers alone make them live.
    const bool needs_ps = jr->job.spec().comm != CommMode::kAllReduce;
    if (jr->job.state() == JobState::kRunning && jr->job.num_workers() > 0 &&
        (!needs_ps || jr->job.num_ps() > 0)) {
      running.push_back(jr.get());
    }
  }

  // Parallel per-job segment math: one noise draw from the job's own stream
  // (the interval engine's per-interval cadence), ground-truth speed at the
  // fresh placement, and the utilization snapshot the timeline records.
  std::vector<double> next_time(running.size(), 0.0);
  auto build = [&](size_t i) {
    JobRuntime* jr = running[i];
    Job& job = jr->job;
    const JobSpec& spec = job.spec();
    jr->seg_noise = jr->rng.LogNormalFactor(config_.runtime_noise_sd);
    const double speed = TrueSpeed(*jr) * jr->seg_noise * cluster_slow_factor_;
    StepTimeInputs in;
    in.model = spec.model;
    in.mode = spec.mode;
    in.comm = spec.comm;
    in.num_ps = job.num_ps();
    in.num_workers = job.num_workers();
    const int batch_override =
        spec.mode == TrainingMode::kSync ? job.batch_override() : 0;
    in.global_batch = batch_override > 0 ? batch_override : spec.GlobalBatch();
    in.async_minibatch = spec.AsyncMinibatch();
    in.load = jr->load;
    in.load_valid = jr->load_valid;
    in.placement_ref = &job.placement();
    in.slowest_worker_factor = job.slowest_worker_factor();
    in.net_bw_bps = jr->net_bw_bps;
    const StepTimeBreakdown b = ComputeStepTime(in, config_.comm);
    if (b.total_s > 0.0) {
      jr->last_worker_util = 100.0 * (b.forward_s + b.backward_s) / b.total_s;
      jr->last_ps_util = 100.0 * (b.update_s + b.overhead_s) / b.total_s;
    }
    if (speed <= 0.0) {
      return;
    }
    const double spe = static_cast<double>(spec.StepsPerEpoch());
    jr->seg_active = true;
    jr->seg_anchor_s = t;
    jr->seg_speed = speed;
    jr->seg_next_epoch =
        static_cast<int64_t>(job.steps_done() / spe) + 1;
    // All-reduce measurements land on the fitted model's p = 1 row (the job
    // itself runs zero PS tasks), matching the interval engine's feeding.
    jr->seg_sample_ps =
        spec.comm == CommMode::kAllReduce ? 1 : job.num_ps();
    jr->seg_sample_workers = job.num_workers();
    jr->seg_sample_speed = speed;
    next_time[i] = t + job.stall_remaining_s() +
                   (static_cast<double>(jr->seg_next_epoch) * spe -
                    job.steps_done()) / speed;
  };
  if (pool_ != nullptr && running.size() > 1) {
    pool_->ParallelFor(static_cast<int64_t>(running.size()),
                       [&](int64_t i) { build(static_cast<size_t>(i)); });
  } else {
    for (size_t i = 0; i < running.size(); ++i) {
      build(i);
    }
  }
  // Serial pushes in job order keep the heap contents deterministic.
  for (size_t i = 0; i < running.size(); ++i) {
    if (running[i]->seg_active) {
      events_.Push({next_time[i], SimEventKind::kEpoch, running[i]->job.id(),
                    running[i]->gen});
    }
  }

  // Timeline sample for the upcoming span (the interval engine records the
  // same tuple at each boundary).
  int running_tasks = 0;
  RunningStat worker_util;
  RunningStat ps_util;
  for (JobRuntime* jr : running) {
    if (!jr->seg_active) {
      continue;
    }
    running_tasks += jr->job.num_workers() + jr->job.num_ps();
    worker_util.Add(jr->last_worker_util);
    ps_util.Add(jr->last_ps_util);
  }
  if (config_.record_timeline) {
    metrics_.timeline.push_back({t + config_.interval_s, running_tasks,
                                 worker_util.count() > 0 ? worker_util.mean() : 0.0,
                                 ps_util.count() > 0 ? ps_util.mean() : 0.0});
  }
  if (m_.running_tasks != nullptr) {
    m_.running_tasks->Set(static_cast<double>(running_tasks));
  }
}

void Simulator::HandleRoundEvent(double t) {
  last_round_s_ = t;
  // Idle fast-forward, mirroring the interval engine: with no arrived,
  // incomplete job, skip — without fault/schedule/audit work — to the round
  // boundary at or after the next arrival. (Arrivals activate through their
  // own events before that round fires.)
  bool any_active = false;
  for (const auto& jr : jobs_) {
    if (jr != nullptr && jr->arrived &&
        jr->job.state() != JobState::kCompleted) {
      any_active = true;
      break;
    }
  }
  if (!any_active) {
    double next_arrival = std::numeric_limits<double>::infinity();
    for (const auto& jr : jobs_) {
      if (jr != nullptr && !jr->arrived) {
        next_arrival = std::min(next_arrival, jr->job.spec().arrival_time_s);
      }
    }
    if (pending_remaining() > 0) {
      next_arrival = std::min(next_arrival,
                              pending_specs_[pending_next_].arrival_time_s);
    }
    if (!std::isfinite(next_arrival)) {
      return;  // nothing left anywhere: no further rounds
    }
    const double intervals = std::ceil((next_arrival - t) / config_.interval_s);
    events_.Push({t + std::max(1.0, intervals) * config_.interval_s,
                  SimEventKind::kRound, -1, 0});
    ++pending_rounds_;
    return;
  }

  // End-of-span bookkeeping: bring every active segment to the boundary and
  // run the deferred model feeding/fits, so this round's scheduler sees
  // estimates that reflect all training up to t (the interval engine feeds
  // models at the end of its advance phase, before the next round's faults).
  {
    ScopedTimer timer(&profiler_, phase_events_);
    for (auto& jr : jobs_) {
      if (jr != nullptr && jr->seg_active) {
        SettleJob(jr.get(), t);
      }
    }
  }
  {
    ScopedTimer timer(&profiler_, phase_events_);
    RefreshModels();
  }
  // Retire only after the refresh: a job that completed since the last round
  // still carries its final trained span, which the refresh above folds into
  // its models exactly as the batch engine does. Retiring earlier would skip
  // that fit and diverge the model counters from the batch run.
  RetireCompleted();

  // The shared policy path, verbatim: fault pipeline (periodic checkpoints,
  // stochastic task failures, eviction scan — scripted edges already fired as
  // kFaultPlan events), scheduling round, invariant audit.
  {
    ScopedTimer timer(&profiler_, phase_faults_);
    ApplyFaults();
  }
  {
    ScopedTimer timer(&profiler_, phase_schedule_);
    ScheduleActiveJobs();
    // Placements are final for the round: resolve per-job bandwidths before
    // RebuildSegments computes segment speeds from them.
    RefreshNetwork();
  }
  {
    ScopedTimer timer(&profiler_, phase_events_);
    RebuildSegments();
  }
  if (config_.audit) {
    ScopedTimer timer(&profiler_, phase_audit_);
    RunAudit();
  }

  metrics_.wall_faults_s = profiler_.seconds(phase_faults_);
  metrics_.wall_schedule_s = profiler_.seconds(phase_schedule_);
  metrics_.wall_advance_s = profiler_.seconds(phase_advance_);
  metrics_.wall_audit_s = profiler_.seconds(phase_audit_);
  metrics_.wall_events_s = profiler_.seconds(phase_events_);
  metrics_.events_processed = event_counts_.total();
  SampleObservability();

  events_.Push({t + config_.interval_s, SimEventKind::kRound, -1, 0});
  ++pending_rounds_;
}

void Simulator::RunEvents() {
  StepEventsUntil(std::numeric_limits<double>::infinity());
}

void Simulator::StepEventsUntil(double horizon) {
  OPTIMUS_CHECK(config_.engine == SimEngine::kEvents);
  if (!events_seeded_) {
    EnqueueStaticEvents();
    events_seeded_ = true;
    ++pending_rounds_;  // EnqueueStaticEvents pushes the first kRound
  }

  std::vector<SimKernelEvent> batch;
  while ((completed_ < static_cast<int>(jobs_.size()) ||
          pending_remaining() > 0) &&
         !events_.empty() && events_.Top().time_s <= horizon &&
         events_.Top().time_s < config_.max_sim_time_s) {
    {
      ScopedTimer timer(&profiler_, phase_events_);
      events_.PopBatch(&batch);
    }
    now_s_ = batch.front().time_s;
    switch (batch.front().kind) {
      case SimEventKind::kArrival: {
        ScopedTimer timer(&profiler_, phase_events_);
        ActivateArrivals();
        for (size_t i = 0; i < batch.size(); ++i) {
          event_counts_.Note(SimEventKind::kArrival);
        }
        break;
      }
      case SimEventKind::kEpoch:
        ProcessEpochBatch(batch);
        break;
      case SimEventKind::kFaultPlan: {
        ScopedTimer timer(&profiler_, phase_faults_);
        HandleFaultPlanEvent(now_s_);
        event_counts_.Note(SimEventKind::kFaultPlan);
        break;
      }
      case SimEventKind::kRound:
        event_counts_.Note(SimEventKind::kRound);
        --pending_rounds_;
        HandleRoundEvent(now_s_);
        break;
    }
  }

  metrics_.events_processed = event_counts_.total();
  metrics_.wall_faults_s = profiler_.seconds(phase_faults_);
  metrics_.wall_schedule_s = profiler_.seconds(phase_schedule_);
  metrics_.wall_advance_s = profiler_.seconds(phase_advance_);
  metrics_.wall_audit_s = profiler_.seconds(phase_audit_);
  metrics_.wall_events_s = profiler_.seconds(phase_events_);
}

}  // namespace optimus
