#include "src/sim/event_kernel.h"

namespace optimus {

const char* SimEventKindName(SimEventKind kind) {
  switch (kind) {
    case SimEventKind::kArrival:
      return "arrival";
    case SimEventKind::kEpoch:
      return "epoch";
    case SimEventKind::kFaultPlan:
      return "fault_plan";
    case SimEventKind::kRound:
      return "round";
  }
  return "unknown";
}

void EventQueue::PopBatch(std::vector<SimKernelEvent>* batch) {
  batch->clear();
  if (heap_.empty()) {
    return;
  }
  const double time_s = heap_.top().time_s;
  const SimEventKind kind = heap_.top().kind;
  while (!heap_.empty() && heap_.top().time_s == time_s &&
         heap_.top().kind == kind) {
    batch->push_back(heap_.top());
    heap_.pop();
  }
}

}  // namespace optimus
