// Deterministic fault injection for the cluster simulator.
//
// The paper's robustness machinery (§5.2 straggler replacement, §5.4
// checkpoint-based elastic scaling) assumes failures happen; this module makes
// them happen on schedule. A FaultPlan scripts server crashes/recoveries
// (including correlated rack-style multi-server outages) and transient
// cluster-wide slowdown bursts; a per-interval task-failure probability adds
// unscripted container deaths. All randomness flows through split RNG streams
// owned by the affected job, so a faulted run is bitwise reproducible for any
// --threads value. See docs/FAULTS.md for the plan grammar and semantics.

#ifndef SRC_SIM_FAULT_INJECTOR_H_
#define SRC_SIM_FAULT_INJECTOR_H_

#include <string>
#include <vector>

namespace optimus {

// One scripted outage: the listed servers go down at start_s and come back at
// recover_s (infinity = never). Overlapping outages compose: a server is up
// only when no active outage covers it.
struct ServerOutage {
  double start_s = 0.0;
  double recover_s = 0.0;  // > start_s, or infinity for a permanent crash
  std::vector<int> servers;
};

// A transient cluster-wide slowdown: while active, every running job trains
// at `factor` times its normal speed (resource contention, network brownout).
struct SlowdownBurst {
  double start_s = 0.0;
  double end_s = 0.0;
  double factor = 1.0;  // in (0, 1]
};

struct FaultPlan {
  std::vector<ServerOutage> outages;
  std::vector<SlowdownBurst> slowdowns;

  bool empty() const { return outages.empty() && slowdowns.empty(); }
};

struct FaultConfig {
  FaultPlan plan;
  // Probability, per task and per scheduling interval, that the task's
  // container dies. A dead task forces a checkpoint-restore of the whole job
  // (progress past the last checkpoint is lost) but keeps its placement.
  double task_failure_prob = 0.0;
  // Periodic durable checkpoints (0 = checkpoint only on scaling events,
  // which is when Optimus saves the model anyway).
  double checkpoint_period_s = 0.0;
  // Cost of a periodic save as a fraction of a full checkpoint-restart stall
  // (a save is the write half; no restore or relaunch happens).
  double checkpoint_save_fraction = 0.5;
  // Relaunch-storm cap: after this many consecutive evictions a job backs
  // off for backoff_base_s, doubling per further eviction up to backoff_max_s.
  int evictions_before_backoff = 2;
  double backoff_base_s = 600.0;
  double backoff_max_s = 7200.0;

  bool enabled() const { return !plan.empty() || task_failure_prob > 0.0; }
};

// Parses a fault-plan spec: semicolon/newline-separated events of the form
//   crash@T:server=S[,recover=T2]
//   rack@T:servers=A-B[,recover=T2]
//   slow@T:factor=F,duration=D
// A spec starting with '@' names a file with one event per line ('#' starts a
// comment). Returns false and sets *error on malformed input.
bool ParseFaultPlan(const std::string& spec, FaultPlan* plan, std::string* error);

// Replays a FaultPlan against simulated time. The injector is advanced once
// per scheduling interval (serially, by the simulator), so its state never
// depends on thread count.
class FaultInjector {
 public:
  // Plan entries naming servers outside [0, num_servers) are ignored, so one
  // plan can be reused across cluster sizes.
  FaultInjector(const FaultConfig& config, int num_servers);

  struct IntervalFaults {
    std::vector<int> crashed;    // servers that went down since the last call
    std::vector<int> recovered;  // servers that came back up
    double slow_factor = 1.0;    // cluster-wide speed factor for this interval
  };

  // Advances scripted events up to and including `now_s` and reports the
  // transitions. Must be called with non-decreasing times.
  IntervalFaults Advance(double now_s);

  bool server_up(int server) const;
  int servers_down() const;

  // P[at least one of `num_tasks` tasks fails this interval].
  double JobFailureProbability(int num_tasks) const;

  const FaultConfig& config() const { return config_; }

 private:
  struct Transition {
    double time_s;
    int server;
    int delta;  // +1 down, -1 up
  };

  FaultConfig config_;
  std::vector<Transition> transitions_;  // sorted by (time, server, delta)
  size_t cursor_ = 0;
  std::vector<int> down_count_;  // active outages covering each server
};

}  // namespace optimus

#endif  // SRC_SIM_FAULT_INJECTOR_H_
