// Always-on invariant auditing for the cluster simulator.
//
// A production scheduler must never silently corrupt cluster state; the
// auditor is the simulator-side analogue of that guarantee. Once per
// scheduling interval it checks the cluster state (per-server load from job
// placements, job-state census, progress deltas):
//   capacity    — per-server placed load fits within the server's capacity,
//                 free resources stay non-negative, placement vectors are
//                 sized to the server list, and per-job placement totals
//                 match the job's allocation
//   dead-server — no running job has a task on an unavailable server
//   progress    — job epoch progress is monotone non-decreasing, except
//                 across an announced checkpoint rollback
//   accounting  — completed + running + paused + pending == jobs submitted,
//                 and the metrics completion counter agrees
//   state       — non-running jobs hold no allocation; task counts and
//                 progress are non-negative
//
// Two check modes share the same invariants:
//   Check()            re-derives everything from the passed-in views from
//                      first principles — O(jobs * servers) per call.
//   CheckIncremental() reads a placement tracker maintained by delta updates
//                      (SetPlacement / ClearPlacement at placement, eviction
//                      and completion time) — O(changed) per call. The
//                      simulator runs this most intervals and falls back to
//                      the full re-derivation periodically, pairing it with
//                      CheckTrackerAgainstViews() so any drift between the
//                      tracker and the true state is itself a violation.
//
// Violations are collected with timestamps; the simulator reports them
// loudly at the end of the run (fatally when audit_fatal is set). The checks
// are pure over the passed-in views, so tests can feed deliberately corrupted
// snapshots and assert the auditor rejects them.

#ifndef SRC_SIM_INVARIANT_AUDITOR_H_
#define SRC_SIM_INVARIANT_AUDITOR_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/job.h"
#include "src/cluster/server.h"
#include "src/obs/flight_recorder.h"
#include "src/pserver/comm_model.h"

namespace optimus {

struct AuditViolation {
  double time_s = 0.0;
  std::string invariant;  // short id: capacity, dead-server, progress, ...
  std::string detail;
};

class InvariantAuditor {
 public:
  // The auditor's read-only view of one job at check time.
  struct JobView {
    int job_id = 0;
    JobState state = JobState::kPending;
    double steps_done = 0.0;
    int num_ps = 0;
    int num_workers = 0;
    Resources ps_demand;
    Resources worker_demand;
    const JobPlacement* placement = nullptr;  // may be null or empty
    // All-reduce jobs legitimately run with zero PS tasks; the running-state
    // allocation check is comm-aware.
    CommMode comm = CommMode::kParameterServer;
  };

  // Job-state census at check time, as the metrics layer counts it.
  struct Counts {
    int submitted = 0;  // jobs that have arrived so far
    int completed_metric = 0;  // RunMetrics::completed_jobs
    // Completed jobs whose runtime records were retired (freed) by streaming
    // admission; they no longer appear in the job views, so the accounting
    // identities count them explicitly: census.completed + retired must equal
    // completed_metric, and the submitted identity includes them.
    int retired = 0;
  };

  // Announces that `job_id`'s progress was legitimately rolled back to a
  // checkpoint since the last Check (crash eviction or task failure); the
  // next Check allows a progress decrease for it, once.
  void NoteRollback(int job_id);

  // Announces that `job_id`'s runtime record was retired after completion
  // (streaming admission): its progress history is dropped so the per-job
  // maps track only live jobs. The job must already have left the placement
  // tracker (completion cleared it).
  void NoteRetired(int job_id);

  // Runs all invariant checks against the snapshot, re-deriving per-server
  // load from scratch. Appends violations.
  void Check(double now_s, const std::vector<Server>& servers,
             const std::vector<JobView>& jobs, const Counts& counts);

  // --- Incremental mode ----------------------------------------------------

  // Sizes the per-server tracker; must be called before SetPlacement.
  void SetClusterSize(size_t n_servers);

  // Delta updates to the placement tracker. SetPlacement replaces job_id's
  // tracked contribution with `placement` (recording the demands so per-server
  // load can be re-derived lazily); ClearPlacement removes it (eviction,
  // pause, completion). Both are O(tasks of the job).
  void SetPlacement(int job_id, const Resources& worker_demand,
                    const Resources& ps_demand, const JobPlacement& placement);
  void ClearPlacement(int job_id);

  // Same invariants as Check(), but per-server load comes from the tracker:
  // only servers whose occupancy changed since the last check are re-summed,
  // so the cost is O(jobs + changed-servers) instead of O(jobs * servers).
  void CheckIncremental(double now_s, const std::vector<Server>& servers,
                        const std::vector<JobView>& jobs, const Counts& counts);

  // Cross-checks the tracker against the ground-truth views: every running
  // job's placement must match its tracked contribution exactly, and the
  // tracker must hold nothing else. Divergence is reported as an
  // "audit-divergence" violation. Does not count as a check (checks_run()
  // is unchanged) — the simulator runs it alongside the periodic full
  // Check() to prove the incremental path never drifted.
  void CheckTrackerAgainstViews(double now_s, const std::vector<JobView>& jobs);

  bool ok() const { return violations_.empty(); }
  const std::vector<AuditViolation>& violations() const { return violations_; }
  int64_t checks_run() const { return checks_run_; }

  // When set, every reported violation is also recorded into the flight
  // recorder (kind kAuditViolation, detail "invariant: detail"), so the
  // post-mortem dump carries the violations interleaved with the allocation
  // and fault events that led up to them. The recorder must outlive the
  // auditor's checks.
  void set_flight_recorder(FlightRecorder* recorder) { flight_ = recorder; }

  // Human-readable digest of up to `max_items` violations.
  std::string Summary(size_t max_items = 5) const;

 private:
  struct Census {
    int running = 0;
    int paused = 0;
    int pending = 0;
    int completed = 0;
  };

  // One tracked (server, workers, ps) contribution of a job.
  struct TrackedTask {
    int server = 0;
    int workers = 0;
    int ps = 0;
  };
  struct TrackedJob {
    std::vector<TrackedTask> tasks;  // ascending server order
    Resources worker_demand;
    Resources ps_demand;
    int num_workers = 0;
    int num_ps = 0;
  };
  struct ServerLoad {
    // job id -> (workers, ps) on this server; summed in job-id order when the
    // load is re-derived, so the result is deterministic.
    std::map<int, std::pair<int, int>> jobs;
  };

  void Report(double now_s, const char* invariant, std::string detail);
  // Per-job scalar invariants shared by both check modes: state sanity,
  // progress monotonicity (consuming rollback_ok_ at the end), and the
  // accounting identities. Returns the state census.
  Census CheckJobScalars(double now_s, const std::vector<JobView>& jobs);
  void CheckAccounting(double now_s, const Census& census, const Counts& counts);
  Resources DeriveServerLoad(size_t s) const;
  void MarkDirty(int server) { dirty_servers_.insert(server); }

  std::map<int, double> last_steps_;
  std::set<int> rollback_ok_;
  std::vector<AuditViolation> violations_;
  int64_t checks_run_ = 0;
  FlightRecorder* flight_ = nullptr;

  // Incremental tracker state.
  std::map<int, TrackedJob> tracked_;
  std::vector<ServerLoad> server_load_;
  std::set<int> occupied_;       // servers with at least one tracked task
  std::set<int> dirty_servers_;  // occupancy changed since the last check
};

}  // namespace optimus

#endif  // SRC_SIM_INVARIANT_AUDITOR_H_
