// Always-on invariant auditing for the cluster simulator.
//
// A production scheduler must never silently corrupt cluster state; the
// auditor is the simulator-side analogue of that guarantee. Once per
// scheduling interval it re-derives the cluster state from first principles
// (per-server load from job placements, job-state census, progress deltas)
// and checks:
//   capacity    — per-server placed load fits within the server's capacity,
//                 free resources stay non-negative, placement vectors are
//                 sized to the server list, and per-job placement totals
//                 match the job's allocation
//   dead-server — no running job has a task on an unavailable server
//   progress    — job epoch progress is monotone non-decreasing, except
//                 across an announced checkpoint rollback
//   accounting  — completed + running + paused + pending == jobs submitted,
//                 and the metrics completion counter agrees
//   state       — non-running jobs hold no allocation; task counts and
//                 progress are non-negative
//
// Violations are collected with timestamps; the simulator reports them
// loudly at the end of the run (fatally when audit_fatal is set). The checks
// are pure over the passed-in views, so tests can feed deliberately corrupted
// snapshots and assert the auditor rejects them.

#ifndef SRC_SIM_INVARIANT_AUDITOR_H_
#define SRC_SIM_INVARIANT_AUDITOR_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/job.h"
#include "src/cluster/server.h"
#include "src/pserver/comm_model.h"

namespace optimus {

struct AuditViolation {
  double time_s = 0.0;
  std::string invariant;  // short id: capacity, dead-server, progress, ...
  std::string detail;
};

class InvariantAuditor {
 public:
  // The auditor's read-only view of one job at check time.
  struct JobView {
    int job_id = 0;
    JobState state = JobState::kPending;
    double steps_done = 0.0;
    int num_ps = 0;
    int num_workers = 0;
    Resources ps_demand;
    Resources worker_demand;
    const JobPlacement* placement = nullptr;  // may be null or empty
  };

  // Job-state census at check time, as the metrics layer counts it.
  struct Counts {
    int submitted = 0;  // jobs that have arrived so far
    int completed_metric = 0;  // RunMetrics::completed_jobs
  };

  // Announces that `job_id`'s progress was legitimately rolled back to a
  // checkpoint since the last Check (crash eviction or task failure); the
  // next Check allows a progress decrease for it, once.
  void NoteRollback(int job_id);

  // Runs all invariant checks against the snapshot. Appends violations.
  void Check(double now_s, const std::vector<Server>& servers,
             const std::vector<JobView>& jobs, const Counts& counts);

  bool ok() const { return violations_.empty(); }
  const std::vector<AuditViolation>& violations() const { return violations_; }
  int64_t checks_run() const { return checks_run_; }

  // Human-readable digest of up to `max_items` violations.
  std::string Summary(size_t max_items = 5) const;

 private:
  void Report(double now_s, const char* invariant, std::string detail);

  std::map<int, double> last_steps_;
  std::set<int> rollback_ok_;
  std::vector<AuditViolation> violations_;
  int64_t checks_run_ = 0;
};

}  // namespace optimus

#endif  // SRC_SIM_INVARIANT_AUDITOR_H_
