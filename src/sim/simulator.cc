#include "src/sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <limits>

#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/perfmodel/sampler.h"
#include "src/sched/baseline_allocators.h"
#include "src/sched/optimus_allocator.h"
#include "src/sched/speed_surface.h"

namespace optimus {

namespace {

// SplitMix64-style combiner for speed-surface signatures.
uint64_t MixSignature(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return h ^ (h >> 27);
}

// All policy construction goes through the SchedulerRegistry. The `policy`
// name is authoritative as long as its registered family still matches the
// `allocator` enum; a caller that sets `allocator` directly after applying a
// policy (the pre-registry override idiom) has explicitly changed families,
// so the enum's builtin name wins. Configs that never set a policy resolve to
// the family's builtin name too.
std::unique_ptr<Allocator> MakeAllocator(const SimulatorConfig& config,
                                         OptimusAllocRoundStats* stats) {
  std::string name = AllocatorPolicyName(config.allocator);
  if (!config.policy.empty()) {
    const SchedulerPolicyInfo* info =
        SchedulerRegistry::Global().Find(config.policy);
    if (info != nullptr && info->allocator_family == config.allocator) {
      name = config.policy;
    }
  }
  std::unique_ptr<Allocator> allocator =
      SchedulerRegistry::Global().Create(name, stats);
  OPTIMUS_CHECK(allocator != nullptr)
      << SchedulerRegistry::Global().UnknownPolicyMessage(name);
  return allocator;
}

}  // namespace

const char* SimEngineName(SimEngine engine) {
  switch (engine) {
    case SimEngine::kInterval:
      return "interval";
    case SimEngine::kEvents:
      return "events";
  }
  return "unknown";
}

bool ParseSimEngine(const std::string& name, SimEngine* out) {
  if (name == "interval") {
    *out = SimEngine::kInterval;
    return true;
  }
  if (name == "events") {
    *out = SimEngine::kEvents;
    return true;
  }
  return false;
}

bool SimulatorConfig::Validate(std::vector<std::string>* errors) const {
  std::vector<std::string> local;
  const auto bad = [&](const std::string& field, const std::string& problem) {
    local.push_back(field + ": " + problem);
  };
  const auto require_finite_ge = [&](const std::string& field, double v, double lo) {
    if (!std::isfinite(v) || v < lo) {
      bad(field, "must be a finite value >= " + std::to_string(lo) + " (got " +
                     std::to_string(v) + ")");
    }
  };
  const auto require_prob = [&](const std::string& field, double v) {
    if (!std::isfinite(v) || v < 0.0 || v > 1.0) {
      bad(field, "must be a probability in [0, 1] (got " + std::to_string(v) + ")");
    }
  };

  if (!policy.empty() && !SchedulerRegistry::Global().Has(policy)) {
    bad("policy", SchedulerRegistry::Global().UnknownPolicyMessage(policy));
  }
  if (!(std::isfinite(interval_s) && interval_s > 0.0)) {
    bad("interval_s", "must be > 0 (got " + std::to_string(interval_s) + ")");
  }
  if (pre_run_samples < 0) {
    bad("pre_run_samples", "must be >= 0 (got " + std::to_string(pre_run_samples) + ")");
  }
  require_finite_ge("speed_measure_noise_sd", speed_measure_noise_sd, 0.0);
  require_finite_ge("runtime_noise_sd", runtime_noise_sd, 0.0);
  if (conv_samples_per_interval < 1) {
    bad("conv_samples_per_interval",
        "must be >= 1 (got " + std::to_string(conv_samples_per_interval) + ")");
  }
  if (conv_samples_per_epoch < 1) {
    bad("conv_samples_per_epoch",
        "must be >= 1 (got " + std::to_string(conv_samples_per_epoch) + ")");
  }
  if (conv_fit_points < 0) {
    bad("conv_fit_points", "must be >= 0 (got " + std::to_string(conv_fit_points) + ")");
  }
  if (!(std::isfinite(young_job_priority_factor) && young_job_priority_factor > 0.0 &&
        young_job_priority_factor <= 1.0)) {
    bad("young_job_priority_factor",
        "must be in (0, 1] (got " + std::to_string(young_job_priority_factor) + ")");
  }
  require_prob("young_job_progress_cutoff", young_job_progress_cutoff);
  if (!(std::isfinite(default_remaining_epochs) && default_remaining_epochs > 0.0)) {
    bad("default_remaining_epochs",
        "must be > 0 (got " + std::to_string(default_remaining_epochs) + ")");
  }
  require_prob("error.convergence_error", error.convergence_error);
  require_prob("error.speed_error", error.speed_error);
  if (threads < 0) {
    bad("threads", "must be >= 0 (0 = OPTIMUS_THREADS; got " +
                       std::to_string(threads) + ")");
  }
  require_finite_ge("chunk_move_s", chunk_move_s, 0.0);
  if (!(std::isfinite(background_share) && background_share >= 0.0 &&
        background_share < 1.0)) {
    bad("background_share",
        "must be in [0, 1) (got " + std::to_string(background_share) + ")");
  }
  require_finite_ge("background_period_s", background_period_s, 0.0);
  if (!(std::isfinite(max_sim_time_s) && max_sim_time_s > 0.0)) {
    bad("max_sim_time_s", "must be > 0 (got " + std::to_string(max_sim_time_s) + ")");
  }
  if (full_audit_period < 1) {
    bad("full_audit_period",
        "must be >= 1 (got " + std::to_string(full_audit_period) + ")");
  }
  if (shards < 1) {
    bad("shards", "must be >= 1 (got " + std::to_string(shards) + ")");
  }
  if (rack_size < 0) {
    bad("rack_size",
        "must be >= 0 (0 = one rack; got " + std::to_string(rack_size) + ")");
  }
  if (!(std::isfinite(net.nic_bps) && net.nic_bps > 0.0)) {
    bad("net.nic_bps", "must be > 0 (got " + std::to_string(net.nic_bps) + ")");
  }
  if (!(std::isfinite(net.oversubscription) && net.oversubscription >= 1.0)) {
    bad("net.oversubscription",
        "must be >= 1 (got " + std::to_string(net.oversubscription) + ")");
  }
  if (obs.flight_recorder_depth < 0) {
    bad("obs.flight_recorder_depth",
        "must be >= 0 (got " + std::to_string(obs.flight_recorder_depth) + ")");
  }
  require_prob("straggler.injection_prob_per_interval",
               straggler.injection_prob_per_interval);
  require_prob("fault.task_failure_prob", fault.task_failure_prob);
  require_finite_ge("fault.checkpoint_period_s", fault.checkpoint_period_s, 0.0);
  require_prob("fault.checkpoint_save_fraction", fault.checkpoint_save_fraction);
  if (fault.evictions_before_backoff < 1) {
    bad("fault.evictions_before_backoff",
        "must be >= 1 (got " + std::to_string(fault.evictions_before_backoff) + ")");
  }
  require_finite_ge("fault.backoff_base_s", fault.backoff_base_s, 0.0);
  if (!(std::isfinite(fault.backoff_max_s) &&
        fault.backoff_max_s >= fault.backoff_base_s)) {
    bad("fault.backoff_max_s", "must be >= fault.backoff_base_s");
  }
  for (size_t i = 0; i < fault.plan.outages.size(); ++i) {
    const ServerOutage& outage = fault.plan.outages[i];
    if (!(outage.recover_s > outage.start_s)) {
      bad("fault.plan.outages[" + std::to_string(i) + "]",
          "recover_s must be > start_s");
    }
  }
  for (size_t i = 0; i < fault.plan.slowdowns.size(); ++i) {
    const SlowdownBurst& burst = fault.plan.slowdowns[i];
    if (!(burst.factor > 0.0 && burst.factor <= 1.0)) {
      bad("fault.plan.slowdowns[" + std::to_string(i) + "]",
          "factor must be in (0, 1]");
    }
    if (!(burst.end_s > burst.start_s)) {
      bad("fault.plan.slowdowns[" + std::to_string(i) + "]",
          "end_s must be > start_s");
    }
  }

  const bool ok = local.empty();
  if (errors != nullptr) {
    errors->insert(errors->end(), local.begin(), local.end());
  }
  return ok;
}

const SimulatorConfig& SimulatorConfig::CheckValid() const {
  std::vector<std::string> errors;
  if (!Validate(&errors)) {
    std::string joined;
    for (const std::string& e : errors) {
      joined += "\n  " + e;
    }
    OPTIMUS_LOG(Fatal) << "invalid SimulatorConfig:" << joined;
  }
  return *this;
}

Simulator::Simulator(SimulatorConfig config, std::vector<Server> servers,
                     std::vector<JobSpec> specs)
    : config_(config.CheckValid()),
      servers_(std::move(servers)),
      allocator_(MakeAllocator(config, &alloc_stats_)),
      straggler_(config.straggler),
      rng_(config.seed),
      flight_(config.obs.enabled ? config.obs.flight_recorder_depth : 0) {
  OPTIMUS_CHECK(!servers_.empty());
  metrics_.total_jobs = static_cast<int>(specs.size());
  if (config_.streaming) {
    // Materialization order must equal spec order for the run to be bitwise
    // identical to the batch-materialized one, so the queue (consumed in
    // arrival order) requires time-ordered specs — the order workload
    // generators emit anyway.
    for (size_t i = 1; i < specs.size(); ++i) {
      OPTIMUS_CHECK_GE(specs[i].arrival_time_s, specs[i - 1].arrival_time_s)
          << "streaming admission requires specs sorted by arrival time "
             "(spec "
          << i << " arrives before its predecessor)";
    }
    pending_specs_ = std::move(specs);
  } else {
    jobs_.reserve(specs.size());
    for (const JobSpec& spec : specs) {
      MaterializeSpec(spec);
    }
  }
  const int threads = config_.threads > 0 ? config_.threads : DefaultThreadCount();
  if (threads > 1) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  shard_plan_ = ShardPlan::Build(config_.shards,
                                 static_cast<int>(servers_.size()),
                                 config_.rack_size);
  // Null under the flat model: every comm-model call then falls back to the
  // Eqn-2 constant and the run is bitwise identical to the pre-fabric code.
  net_ = NetworkModel::Create(config_.net, static_cast<int>(servers_.size()),
                              config_.rack_size);
  faults_ = std::make_unique<FaultInjector>(config_.fault,
                                            static_cast<int>(servers_.size()));
  auditor_.SetClusterSize(servers_.size());
  if (config_.trace_hash_only) {
    trace_.set_hash_only(true);
  }
  // Rough per-run event budget: a handful of lifecycle events per job.
  trace_.Reserve((jobs_.size() + pending_remaining()) * 8 + 64);
  SetupObservability();
}

void Simulator::MaterializeSpec(const JobSpec& spec) {
  auto jr = std::make_unique<JobRuntime>(spec);
  jr->rng = rng_.Split(static_cast<uint64_t>(spec.id) + 1000);
  jr->fault_rng = rng_.Split(static_cast<uint64_t>(spec.id) + 500000);
  jr->error_sign = jr->rng.Bernoulli(0.5) ? 1 : -1;
  jr->blocks = GenerateParamBlocks(*spec.model);
  jr->data = std::make_unique<DataServing>(
      EstimateDatasetBytes(*spec.model, spec.dataset_scale));
  jr->true_total_epochs = static_cast<double>(
      jr->curve.EpochsToConverge(spec.convergence_delta, spec.patience));
  const bool inserted = job_index_.emplace(spec.id, jobs_.size()).second;
  OPTIMUS_CHECK(inserted) << "duplicate job id " << spec.id;
  jobs_.push_back(std::move(jr));
}

void Simulator::MaterializeArrivals(double t) {
  while (pending_next_ < pending_specs_.size() &&
         pending_specs_[pending_next_].arrival_time_s <= t) {
    MaterializeSpec(pending_specs_[pending_next_]);
    pending_specs_[pending_next_] = JobSpec{};  // release the consumed slot
    ++pending_next_;
  }
}

void Simulator::RetireJob(size_t idx) {
  JobRuntime* jr = jobs_[idx].get();
  OPTIMUS_CHECK(jr != nullptr && jr->job.state() == JobState::kCompleted);
  if (retired_.size() < jobs_.size()) {
    retired_.resize(jobs_.size());
  }
  RetiredJob& r = retired_[idx];
  r.valid = true;
  r.killed = jr->killed;
  r.arrival_time_s = jr->job.spec().arrival_time_s;
  r.completion_time_s = jr->job.completion_time_s();
  r.jct_s = jr->job.Jct();
  r.total_stall_s = jr->job.total_stall_s();
  if (jr->conv != nullptr) {
    const ModelFitStats& s = jr->conv->fit_stats();
    retired_conv_stats_.fits += s.fits;
    retired_conv_stats_.fit_cache_hits += s.fit_cache_hits;
    retired_conv_stats_.nnls_iterations += s.nnls_iterations;
  }
  if (jr->speed != nullptr) {
    const ModelFitStats& s = jr->speed->fit_stats();
    retired_speed_stats_.fits += s.fits;
    retired_speed_stats_.fit_cache_hits += s.fit_cache_hits;
    retired_speed_stats_.nnls_iterations += s.nnls_iterations;
  }
  ++retired_count_;
  auditor_.NoteRetired(jr->job.id());
  HarvestPlacement(&jr->job);
  jobs_[idx].reset();
}

void Simulator::RetireCompleted() {
  if (!config_.streaming) {
    return;
  }
  for (size_t i = 0; i < jobs_.size(); ++i) {
    if (jobs_[i] != nullptr && jobs_[i]->arrived &&
        jobs_[i]->job.state() == JobState::kCompleted) {
      RetireJob(i);
    }
  }
}

void Simulator::SetupObservability() {
  // The auditor records its violations into the recorder (no-op at depth 0),
  // so the post-mortem dump interleaves them with the decisions around them.
  auditor_.set_flight_recorder(&flight_);
  if (config_.obs.enabled) {
    auto c = [this](const char* name, const char* help) {
      return registry_.AddCounter(name, help);
    };
    m_.intervals = c("optimus_intervals_total", "Scheduling intervals simulated.");
    m_.jobs_submitted = c("optimus_jobs_submitted_total", "Jobs that have arrived.");
    m_.jobs_completed =
        c("optimus_jobs_completed_total", "Jobs converged and completed.");
    m_.jobs_killed = c("optimus_jobs_killed_total",
                       "Jobs cancelled by an online kill request.");
    m_.scalings = c("optimus_scalings_total",
                    "Checkpoint-restart resource adjustments applied.");
    m_.straggler_replacements = c("optimus_straggler_replacements_total",
                                  "Straggling workers detected and replaced.");
    m_.checkpoints = c("optimus_checkpoints_total",
                       "Periodic durable checkpoints taken (fault plan).");
    m_.evictions = c("optimus_job_evictions_total",
                     "Jobs evicted after losing tasks to a down server.");
    m_.task_failures = c("optimus_task_failures_total",
                         "Container deaths restored from checkpoint in place.");
    m_.server_crashes = c("optimus_server_crashes_total", "Scripted server crashes.");
    m_.server_recoveries =
        c("optimus_server_recoveries_total", "Crashed servers brought back up.");
    m_.backoff_deferrals = c("optimus_backoff_deferrals_total",
                             "Relaunch-backoff deferrals after repeated evictions.");
    m_.rolled_back_steps = c("optimus_rolled_back_steps_total",
                             "Training steps lost to checkpoint rollbacks.");
    m_.audit_checks = c("optimus_audit_checks_total", "Invariant-auditor passes.");
    m_.audit_violations =
        c("optimus_audit_violations_total", "Invariant violations reported.");
    m_.speed_probes = c("optimus_speed_probes_total",
                        "Speed-surface probes across scheduling rounds.");
    m_.speed_evals = c("optimus_speed_evals_total",
                       "Underlying speed-function evaluations (probes minus "
                       "memo hits).");
    m_.speed_surfaces = c("optimus_speed_surfaces_total",
                          "Distinct speed surfaces built across rounds.");
    m_.alloc_pops =
        c("optimus_alloc_pops_total", "Greedy-heap candidates popped (Optimus).");
    m_.alloc_grants =
        c("optimus_alloc_grants_total", "Tasks granted by the greedy allocator.");
    m_.alloc_stale_drops = c("optimus_alloc_stale_drops_total",
                             "Heap candidates discarded as stale snapshots.");
    m_.alloc_unfittable_drops =
        c("optimus_alloc_unfittable_drops_total",
          "Heap candidates dropped because their task kind no longer fits.");
    m_.conv_fits =
        c("optimus_conv_fits_total", "Convergence-model solve attempts.");
    m_.conv_fit_cache_hits = c("optimus_conv_fit_cache_hits_total",
                               "Convergence fits answered by the dirty-flag cache.");
    m_.conv_nnls_iterations = c("optimus_conv_nnls_iterations_total",
                                "NNLS iterations spent in convergence fits.");
    m_.speedmodel_fits =
        c("optimus_speedmodel_fits_total", "Speed-model solve attempts.");
    m_.speedmodel_fit_cache_hits =
        c("optimus_speedmodel_fit_cache_hits_total",
          "Speed-model fits answered by the dirty-flag cache.");
    m_.speedmodel_nnls_iterations = c("optimus_speedmodel_nnls_iterations_total",
                                      "NNLS iterations spent in speed-model fits.");
    m_.events_processed = c("optimus_events_processed_total",
                            "Discrete events handled by the event kernel "
                            "(stale-dropped entries excluded).");
    for (int k = 0; k < kNumSimEventKinds; ++k) {
      const std::string name = std::string("optimus_events_") +
                               SimEventKindName(static_cast<SimEventKind>(k)) +
                               "_total";
      const std::string help = std::string("Event-kernel events of kind ") +
                               SimEventKindName(static_cast<SimEventKind>(k)) +
                               " handled.";
      m_.events_by_kind[k] = registry_.AddCounter(name, help);
    }
    m_.sim_time = registry_.AddGauge("optimus_sim_time_seconds", "Simulated time.");
    m_.running_tasks = registry_.AddGauge(
        "optimus_running_tasks", "Tasks (workers + PS) running last interval.");
    m_.jct_seconds = registry_.AddHistogram(
        "optimus_jct_seconds", "Job completion times (arrival to convergence).",
        {1800.0, 3600.0, 7200.0, 14400.0, 28800.0, 57600.0, 115200.0, 230400.0});
    m_.completed_epochs = registry_.AddHistogram(
        "optimus_completed_epochs", "Epochs at convergence for completed jobs.",
        {5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0});
    // Network-fabric metrics register only when a non-flat model is live:
    // flat runs keep the historical catalog byte-identical (the committed
    // metrics.prom golden), and the fabric values are deterministic
    // (placement-driven serial solves), so within a fabric config the
    // catalog remains a stable prefix across threads/shards/engines.
    if (net_ != nullptr) {
      m_.net_solves = c("optimus_net_solves_total",
                        "Network fair-share solves (one per round).");
      m_.net_flows = c("optimus_net_flows_total",
                       "Flows registered with the network model, cumulative.");
      m_.net_contended_flows =
          c("optimus_net_contended_flows_total",
            "Flows held below their isolated rate by link sharing.");
      m_.net_max_link_util = registry_.AddGauge(
          "optimus_net_max_link_utilization",
          "Most utilized fabric link after the last solve (0-1).");
      m_.net_mean_link_util = registry_.AddGauge(
          "optimus_net_mean_link_utilization",
          "Mean utilization over all fabric links after the last solve (0-1).");
    }
    // Sharded-round counters describe HOW the round computed its
    // (bitwise-invariant) answer, so they vary with config_.shards. They are
    // quarantined here, between the deterministic catalog prefix and the
    // wall_* gauges, with the other profile-only metrics: the deterministic
    // catalog stays a stable prefix of the export for every (shards,
    // threads) combination.
    m_.shard_rounds = c("optimus_shard_rounds_total",
                        "Two-phase sharded scheduling rounds executed.");
    m_.shard_local_grants =
        c("optimus_shard_local_grants_total",
          "Phase-1 provisional grants across all shards (profile only).");
    m_.shard_local_evals =
        c("optimus_shard_local_evals_total",
          "Phase-1 speed-function evaluations across all shards.");
    m_.shard_warmed_points =
        c("optimus_shard_warmed_points_total",
          "Memoized speed points handed from shard surfaces to fixup passes.");
    m_.shard_migrated_jobs =
        c("optimus_shard_migrated_jobs_total",
          "Jobs whose fixup-pass grant differs from their shard-local grant.");
    m_.shard_migrated_tasks =
        c("optimus_shard_migrated_tasks_total",
          "Task-count delta between shard-local and fixup-pass grants.");
    // Profiling gauges (optimus_wall_*_seconds) register last so the
    // deterministic catalog is a stable prefix of the export.
    profiler_.AttachRegistry(&registry_, "optimus_wall_");
  }
  phase_faults_ = profiler_.RegisterPhase("faults");
  phase_schedule_ = profiler_.RegisterPhase("schedule");
  phase_advance_ = profiler_.RegisterPhase("advance");
  phase_audit_ = profiler_.RegisterPhase("audit");
  phase_events_ = profiler_.RegisterPhase("events");
}

void Simulator::SampleObservability() {
  if (!config_.obs.enabled) {
    return;
  }
  m_.intervals->Add(1.0);

  // Cumulative per-job model-fit totals, summed in job order (integer sums,
  // so the order matters only for consistency, not correctness).
  // Retired runtimes (streaming) contribute through the folded aggregates;
  // integer sums, so the totals match the batch walk bitwise.
  int submitted = retired_count_;
  ModelFitStats conv = retired_conv_stats_;
  ModelFitStats speedm = retired_speed_stats_;
  for (const auto& jr : jobs_) {
    if (jr == nullptr || !jr->arrived) {
      continue;
    }
    ++submitted;
    if (jr->conv != nullptr) {
      const ModelFitStats& s = jr->conv->fit_stats();
      conv.fits += s.fits;
      conv.fit_cache_hits += s.fit_cache_hits;
      conv.nnls_iterations += s.nnls_iterations;
    }
    if (jr->speed != nullptr) {
      const ModelFitStats& s = jr->speed->fit_stats();
      speedm.fits += s.fits;
      speedm.fit_cache_hits += s.fit_cache_hits;
      speedm.nnls_iterations += s.nnls_iterations;
    }
  }

  m_.jobs_submitted->Set(static_cast<double>(submitted));
  m_.jobs_completed->Set(static_cast<double>(metrics_.completed_jobs));
  m_.jobs_killed->Set(static_cast<double>(metrics_.jobs_killed));
  m_.scalings->Set(static_cast<double>(metrics_.total_scalings));
  m_.straggler_replacements->Set(static_cast<double>(straggler_.replacements()));
  m_.checkpoints->Set(static_cast<double>(metrics_.checkpoints_taken));
  m_.evictions->Set(static_cast<double>(metrics_.job_evictions));
  m_.task_failures->Set(static_cast<double>(metrics_.task_failures));
  m_.server_crashes->Set(static_cast<double>(metrics_.server_crashes));
  m_.server_recoveries->Set(static_cast<double>(metrics_.server_recoveries));
  m_.backoff_deferrals->Set(static_cast<double>(metrics_.backoff_deferrals));
  m_.rolled_back_steps->Set(metrics_.rolled_back_steps);
  m_.audit_checks->Set(static_cast<double>(metrics_.audit_checks));
  m_.audit_violations->Set(static_cast<double>(metrics_.audit_violations));
  m_.speed_probes->Set(static_cast<double>(surface_probes_));
  m_.speed_evals->Set(static_cast<double>(surface_evals_));
  m_.speed_surfaces->Set(static_cast<double>(surface_count_));
  m_.alloc_pops->Set(static_cast<double>(alloc_stats_.pops));
  m_.alloc_grants->Set(static_cast<double>(alloc_stats_.grants));
  m_.alloc_stale_drops->Set(static_cast<double>(alloc_stats_.stale_drops));
  m_.alloc_unfittable_drops->Set(static_cast<double>(alloc_stats_.unfittable_drops));
  m_.conv_fits->Set(static_cast<double>(conv.fits));
  m_.conv_fit_cache_hits->Set(static_cast<double>(conv.fit_cache_hits));
  m_.conv_nnls_iterations->Set(static_cast<double>(conv.nnls_iterations));
  m_.speedmodel_fits->Set(static_cast<double>(speedm.fits));
  m_.speedmodel_fit_cache_hits->Set(static_cast<double>(speedm.fit_cache_hits));
  m_.speedmodel_nnls_iterations->Set(static_cast<double>(speedm.nnls_iterations));
  m_.events_processed->Set(static_cast<double>(event_counts_.total()));
  for (int k = 0; k < kNumSimEventKinds; ++k) {
    m_.events_by_kind[k]->Set(
        static_cast<double>(event_counts_.counts[static_cast<size_t>(k)]));
  }
  m_.shard_rounds->Set(static_cast<double>(sharded_stats_.rounds));
  m_.shard_local_grants->Set(static_cast<double>(sharded_stats_.local_grants));
  m_.shard_local_evals->Set(static_cast<double>(sharded_stats_.local_evals));
  m_.shard_warmed_points->Set(static_cast<double>(sharded_stats_.warmed_points));
  m_.shard_migrated_jobs->Set(static_cast<double>(sharded_stats_.migrated_jobs));
  m_.shard_migrated_tasks->Set(
      static_cast<double>(sharded_stats_.migrated_tasks));
  if (net_ != nullptr && m_.net_solves != nullptr) {
    const NetworkStats& ns = net_->stats();
    m_.net_solves->Set(static_cast<double>(ns.solves));
    m_.net_flows->Set(static_cast<double>(ns.flows));
    m_.net_contended_flows->Set(static_cast<double>(ns.contended_flows));
    m_.net_max_link_util->Set(ns.max_link_utilization);
    m_.net_mean_link_util->Set(ns.mean_link_utilization);
  }
  m_.sim_time->Set(now_s_);

  if (config_.obs.per_interval_series) {
    series_.Sample(now_s_, registry_);
  }
}

const Job& Simulator::job(int id) const {
  const auto it = job_index_.find(id);
  if (it == job_index_.end()) {
    OPTIMUS_LOG(Fatal) << "unknown job id " << id;
  }
  if (jobs_[it->second] == nullptr) {
    OPTIMUS_LOG(Fatal) << "job " << id
                       << " completed and was retired (streaming admission)";
  }
  return jobs_[it->second]->job;
}

void Simulator::InitSpeedModel(JobRuntime* jr) {
  const JobSpec& spec = jr->job.spec();
  ConvergenceModelOptions conv_options;
  if (config_.conv_fit_points > 0) {
    conv_options.max_fit_points = config_.conv_fit_points;
  }
  jr->conv = std::make_unique<ConvergenceModel>(conv_options);
  if (config_.multi_family_fitting) {
    jr->multi_conv = std::make_unique<MultiFamilyConvergenceModel>();
  }
  jr->speed =
      std::make_unique<SpeedModel>(spec.mode, spec.GlobalBatch());
  if (!config_.model_caching) {
    // Baseline mode: from-scratch dense refits and un-memoized predictions
    // (bit-identical outputs, used to benchmark the cached paths).
    jr->conv->set_caching(false);
    jr->speed->set_caching(false);
  }
  if (config_.oracle_estimates) {
    return;  // oracle mode never consults the fitted models
  }
  // Pre-run the job for a few steps on a data sample at several (p, w)
  // configurations (§3.2 "Model fitting"). The measured speeds come from the
  // ground-truth model under balanced PS load and unknown placement.
  Rng* noise = &jr->rng;
  // All-reduce jobs run no PS tasks: their speed lives on the single p == 0
  // row of the comm model, which the fitted SpeedModel stores under p = 1
  // (its Eqn-3/4 grid starts at one PS). Pre-run samples therefore pin p.
  const bool allreduce = spec.comm == CommMode::kAllReduce;
  SpeedOracle oracle = [this, spec, noise, allreduce](int p, int w) {
    StepTimeInputs in;
    in.model = spec.model;
    in.mode = spec.mode;
    in.comm = spec.comm;
    in.num_ps = allreduce ? 0 : p;
    in.num_workers = w;
    in.global_batch = spec.GlobalBatch();
    in.async_minibatch = spec.AsyncMinibatch();
    return TrainingSpeed(in, config_.comm) *
           noise->LogNormalFactor(config_.speed_measure_noise_sd);
  };
  Rng sampler_rng = jr->rng.Split(77);
  InitializeSpeedModel(jr->speed.get(), oracle, config_.pre_run_samples,
                       allreduce ? 1 : spec.max_ps, spec.max_workers,
                       &sampler_rng);
}

void Simulator::ActivateArrivals() {
  // Collect this interval's arrivals first, then initialize their speed
  // models — possibly in parallel. Initialization only touches per-job state
  // (the job's own RNG streams included), so the parallel path is bitwise
  // identical to the serial one; trace events are recorded afterwards, in
  // arrival (input) order, to keep the event log deterministic too.
  MaterializeArrivals(now_s_);
  std::vector<JobRuntime*> arriving;
  for (auto& jr : jobs_) {
    if (jr == nullptr) {
      continue;
    }
    if (!jr->arrived && jr->job.spec().arrival_time_s <= now_s_) {
      jr->arrived = true;
      arriving.push_back(jr.get());
    }
  }
  if (pool_ != nullptr && arriving.size() > 1) {
    pool_->ParallelFor(static_cast<int64_t>(arriving.size()),
                       [&](int64_t i) { InitSpeedModel(arriving[i]); });
  } else {
    for (JobRuntime* jr : arriving) {
      InitSpeedModel(jr);
    }
  }
  for (JobRuntime* jr : arriving) {
    trace_.Record(now_s_, SimEventType::kArrival, jr->job.id(), 0, 0,
                  jr->job.spec().model->name);
  }
}

double Simulator::ErrorFactor(const JobRuntime& jr, double error_magnitude) const {
  if (error_magnitude <= 0.0) {
    return 1.0;
  }
  const double progress =
      jr.true_total_epochs > 0.0
          ? std::clamp(jr.job.EpochsDone() / jr.true_total_epochs, 0.0, 1.0)
          : 0.0;
  return 1.0 + jr.error_sign * error_magnitude * (1.0 - progress);
}

double Simulator::EstimateRemainingEpochs(const JobRuntime& jr) const {
  if (config_.oracle_estimates) {
    const double remaining = std::max(0.0, jr.true_total_epochs - jr.job.EpochsDone());
    return std::max(0.0, remaining * ErrorFactor(jr, config_.error.convergence_error));
  }
  if (config_.multi_family_fitting && jr.multi_conv != nullptr &&
      jr.multi_conv->fitted()) {
    return jr.multi_conv->PredictRemainingEpochs(
        jr.job.steps_done(), jr.job.spec().convergence_delta, jr.job.spec().patience,
        jr.job.spec().StepsPerEpoch());
  }
  if (jr.conv != nullptr && jr.conv->fitted()) {
    return jr.conv->PredictRemainingEpochs(
        jr.job.steps_done(), jr.job.spec().convergence_delta, jr.job.spec().patience,
        jr.job.spec().StepsPerEpoch());
  }
  return config_.default_remaining_epochs;
}

SchedJob Simulator::MakeSchedJob(JobRuntime* jr) const {
  const JobSpec& spec = jr->job.spec();
  SchedJob sj;
  sj.job_id = spec.id;
  sj.mode = spec.mode;
  sj.comm = spec.comm;
  sj.worker_demand = spec.worker_demand;
  sj.ps_demand = spec.ps_demand;
  sj.max_ps = spec.max_ps;
  sj.max_workers = spec.max_workers;
  // All-reduce jobs run no PS tasks: the scheduler sees a zero PS cap and a
  // zero PS demand, so every allocator works along the p == 0 row.
  const bool allreduce = spec.comm == CommMode::kAllReduce;
  if (allreduce) {
    sj.max_ps = 0;
    sj.ps_demand = Resources();
  }
  sj.remaining_epochs = EstimateRemainingEpochs(*jr);

  const double spe = static_cast<double>(spec.StepsPerEpoch());
  if (config_.oracle_estimates) {
    // Speed-estimation error distorts the *slope* of the estimated speed
    // function: the estimate is exact in the middle of the configuration
    // range and off by up to +/-e at the extremes. A uniform scale factor
    // would cancel out of every allocation decision; a slope error misplaces
    // the speed knee and causes genuine over-/under-allocation, which is what
    // Fig 15 measures.
    const double err = ErrorFactor(*jr, config_.error.speed_error) - 1.0;
    const CommConfig comm = config_.comm;
    const double span = static_cast<double>(sj.max_ps + sj.max_workers);
    sj.speed = [spec, spe, err, comm, span](int p, int w) {
      StepTimeInputs in;
      in.model = spec.model;
      in.mode = spec.mode;
      in.comm = spec.comm;
      in.num_ps = p;
      in.num_workers = w;
      in.global_batch = spec.GlobalBatch();
      in.async_minibatch = spec.AsyncMinibatch();
      const double tilt = 2.0 * (p + w) / span - 1.0;  // -1 at (1,1), +1 at caps
      return TrainingSpeed(in, comm) / spe * (1.0 + err * tilt);
    };
    if (err == 0.0) {
      // Without injected error the estimate depends only on the job's model
      // profile, so jobs sharing one profile can share one memoized speed
      // surface within a scheduling round.
      uint64_t sig = std::hash<std::string>{}(spec.model->name);
      sig = MixSignature(sig, static_cast<uint64_t>(spec.mode));
      sig = MixSignature(sig, static_cast<uint64_t>(spec.GlobalBatch()));
      sig = MixSignature(sig, static_cast<uint64_t>(spec.AsyncMinibatch()));
      sig = MixSignature(sig, static_cast<uint64_t>(spec.StepsPerEpoch()));
      if (allreduce) {
        // The all-reduce speed function differs from the PS one for the same
        // model profile; fold comm in only for non-default modes so PS jobs
        // keep their historical signatures (and shard partitions) bitwise.
        sig = MixSignature(sig, static_cast<uint64_t>(spec.comm) + 1);
      }
      sj.speed_signature = sig != 0 ? sig : 1;
    }
  } else if (config_.naive_linear_speed) {
    // Naive assumption: perfect linear scaling in workers from the single
    // (1, 1) measurement, parameter servers free.
    SpeedModel* model = jr->speed.get();
    sj.speed = [model, spe](int /*p*/, int w) {
      if (model == nullptr || !model->fitted()) {
        return 0.0;
      }
      return model->Estimate(1, 1) * static_cast<double>(w) / spe;
    };
  } else if (allreduce) {
    // Fitted all-reduce estimates live on the model's p = 1 row (the grid the
    // pre-run samples and interval measurements were pinned to).
    SpeedModel* model = jr->speed.get();
    sj.speed = [model, spe](int /*p*/, int w) {
      if (model == nullptr || !model->fitted()) {
        return 0.0;
      }
      return model->Estimate(1, w) / spe;
    };
  } else {
    SpeedModel* model = jr->speed.get();
    sj.speed = [model, spe](int p, int w) {
      if (model == nullptr || !model->fitted()) {
        return 0.0;
      }
      return model->Estimate(p, w) / spe;
    };
  }

  // Batch-adaptivity surface (sync jobs only): the admissible range, the
  // statistical-efficiency parameter, and a batch-capable physical speed
  // estimate. batch_speed scales the policy-facing estimate by the analytic
  // step-time ratio T(M0)/T(b) — a pure function of the model profile, so it
  // adds no RNG draws and is identical across threads/shards. Policies that
  // ignore the batch dimension never call it.
  if (spec.mode == TrainingMode::kSync) {
    sj.batch_ref = spec.GlobalBatch();
    sj.batch_min = spec.BatchMin();
    sj.batch_max = spec.BatchMax();
    sj.grad_noise_scale = spec.GradNoiseScale();
    if (sj.batch_min > 0 && sj.batch_max > sj.batch_min) {
      const SpeedEstimate base = sj.speed;
      const CommConfig comm = config_.comm;
      const int ref_batch = sj.batch_ref;
      sj.batch_speed = [base, spec, comm, ref_batch](int p, int w, int b) {
        StepTimeInputs in;
        in.model = spec.model;
        in.mode = spec.mode;
        in.comm = spec.comm;
        in.num_ps = p;
        in.num_workers = w;
        in.async_minibatch = spec.AsyncMinibatch();
        in.global_batch = ref_batch;
        const double ref_speed = TrainingSpeed(in, comm);
        in.global_batch = b;
        const double b_speed = TrainingSpeed(in, comm);
        const double ratio = ref_speed > 0.0 ? b_speed / ref_speed : 1.0;
        return base(p, w) * ratio;
      };
    }
  }
  // Sensitivity profile for resource-sensitive policies.
  sj.cpu_sensitivity = spec.CpuSensitivity();
  sj.mem_sensitivity = spec.MemSensitivity();

  const double progress =
      jr->true_total_epochs > 0.0 ? jr->job.EpochsDone() / jr->true_total_epochs : 0.0;
  if (progress < config_.young_job_progress_cutoff) {
    sj.priority_factor = config_.young_job_priority_factor;
  }
  return sj;
}

void Simulator::RecomputeLoad(JobRuntime* jr) {
  const int p = jr->job.num_ps();
  if (p <= 0) {
    jr->load_valid = false;
    return;
  }
  if (config_.use_paa) {
    // Contention-aware tie-break: with a live network model, PS indices are
    // weighted by their server's link headroom (last solve) so PAA's
    // least-loaded choice drifts off congested links. PS index k maps to a
    // server via the canonical placement order (ForEachUsed ascending server
    // ids, consecutive indices per server). Null weights (flat model, or a
    // placement not yet applied) keep the unweighted, bit-identical path.
    std::vector<double> weights;
    if (net_ != nullptr && !jr->job.placement().empty()) {
      weights.reserve(static_cast<size_t>(p));
      jr->job.placement().ForEachUsed([&](size_t s, int /*w_k*/, int p_k) {
        for (int k = 0; k < p_k; ++k) {
          weights.push_back(net_->ServerWeight(static_cast<int>(s)));
        }
      });
    }
    const std::vector<double>* w =
        static_cast<int>(weights.size()) == p ? &weights : nullptr;
    jr->load = ComputeLoadMetrics(PaaAssigner().Assign(jr->blocks, p, w));
  } else {
    Rng assign_rng = jr->rng.Split(static_cast<uint64_t>(p) + 7);
    jr->load = ComputeLoadMetrics(MxnetAssigner().Assign(jr->blocks, p, &assign_rng));
  }
  jr->load_valid = true;
}

double Simulator::TrueSpeed(const JobRuntime& jr) const {
  const JobSpec& spec = jr.job.spec();
  const bool allreduce = spec.comm == CommMode::kAllReduce;
  if (jr.job.num_workers() <= 0 || (!allreduce && jr.job.num_ps() <= 0)) {
    return 0.0;
  }
  StepTimeInputs in;
  in.model = spec.model;
  in.mode = spec.mode;
  in.comm = spec.comm;
  in.num_ps = jr.job.num_ps();
  in.num_workers = jr.job.num_workers();
  in.global_batch = spec.GlobalBatch();
  in.async_minibatch = spec.AsyncMinibatch();
  // A scheduler-chosen batch override (batch-adaptive policies, sync jobs)
  // changes the physical step time AND discounts progress by the statistical
  // efficiency of the larger batch. When unset — every pre-existing policy —
  // this path is bitwise identical to the historical one.
  const int batch_override =
      spec.mode == TrainingMode::kSync ? jr.job.batch_override() : 0;
  if (batch_override > 0) {
    in.global_batch = batch_override;
  }
  in.load = jr.load;
  in.load_valid = jr.load_valid;
  in.placement_ref = &jr.job.placement();  // borrow; avoids 2 vector copies
  in.slowest_worker_factor = jr.job.slowest_worker_factor();
  in.net_bw_bps = jr.net_bw_bps;  // 0 under the flat model (Eqn-2 constant)
  double speed = TrainingSpeed(in, config_.comm);
  if (batch_override > 0) {
    speed *= BatchProgressFactor(spec.GradNoiseScale(), spec.GlobalBatch(),
                                 batch_override);
  }
  return speed;
}

bool Simulator::RefreshNetwork() {
  if (net_ == nullptr) {
    return false;  // flat model: the Eqn-2 constant, nothing to solve
  }
  // Serial by construction: runs after scheduling (and after fault-edge
  // evictions on the event engine), never inside a parallel phase, and the
  // solve itself is a pure function of the job-ordered placements — so the
  // resolved bandwidths are bitwise identical across threads and shards.
  net_->BeginRound();
  for (const auto& jr : jobs_) {
    if (jr == nullptr || !jr->arrived ||
        jr->job.state() != JobState::kRunning || jr->job.placement().empty()) {
      continue;
    }
    net_->AddJob(jr->job.id(), jr->job.placement());
  }
  net_->Solve();
  bool changed = false;
  for (auto& jr : jobs_) {
    if (jr == nullptr || !jr->arrived) {
      continue;
    }
    double bw = 0.0;
    if (jr->job.state() == JobState::kRunning && !jr->job.placement().empty()) {
      bw = net_->BandwidthFor(jr->job.id());
    }
    if (bw != jr->net_bw_bps) {
      jr->net_bw_bps = bw;
      changed = true;
    }
  }
  return changed;
}

double Simulator::BackgroundShare(double t) const {
  if (config_.background_share <= 0.0) {
    return 0.0;
  }
  if (config_.background_period_s <= 0.0) {
    return config_.background_share;
  }
  constexpr double kTwoPi = 6.283185307179586;
  return config_.background_share *
         (0.5 + 0.5 * std::sin(kTwoPi * t / config_.background_period_s));
}

void Simulator::HarvestPlacement(Job* job) {
  JobPlacement* p = job->mutable_placement();
  const bool dense_full = p->workers_per_server.size() == servers_.size() &&
                          p->ps_per_server.size() == servers_.size();
  if (dense_full || p->compact()) {
    placement_spares_.push_back(std::move(*p));
    *p = JobPlacement{};
  }
}

void Simulator::EvictJob(JobRuntime* jr, const std::string& reason) {
  Job& job = jr->job;
  const double lost = job.RollbackToCheckpoint();
  metrics_.rolled_back_steps += lost;
  job.AddStall(CheckpointStallSeconds(*job.spec().model, config_.checkpoint));
  HarvestPlacement(&job);
  job.SetAllocation(0, 0, {});
  job.set_state(job.steps_done() > 0 ? JobState::kPaused : JobState::kPending);
  jr->load_valid = false;
  // Event engine: the job stops training immediately; any pending epoch
  // event is now stale. No-op under the interval engine.
  jr->seg_active = false;
  ++jr->gen;
  auditor_.NoteRollback(job.id());
  auditor_.ClearPlacement(job.id());
  ++metrics_.job_evictions;
  ++jr->consecutive_evictions;
  const FaultConfig& fc = config_.fault;
  if (jr->consecutive_evictions >= fc.evictions_before_backoff &&
      fc.backoff_base_s > 0.0) {
    const int extra = jr->consecutive_evictions - fc.evictions_before_backoff;
    const double backoff = std::min(
        fc.backoff_max_s, fc.backoff_base_s * std::pow(2.0, extra));
    jr->backoff_until_s = now_s_ + backoff;
    ++metrics_.backoff_deferrals;
  }
  trace_.Record(now_s_, SimEventType::kEvicted, job.id(), 0, 0, reason);
  flight_.Record(now_s_, FlightEventKind::kEvicted, job.id(), 0, 0, 0.0, reason);
}

void Simulator::ApplyFaults() {
  const FaultConfig& fc = config_.fault;

  // Periodic durable checkpoints happen first, so a crash in this same call
  // rolls back to a checkpoint at most checkpoint_period_s old.
  if (fc.checkpoint_period_s > 0.0) {
    for (auto& jr : jobs_) {
      if (jr == nullptr || !jr->arrived || jr->job.state() != JobState::kRunning) {
        continue;
      }
      if (now_s_ - jr->last_checkpoint_time_s >= fc.checkpoint_period_s) {
        jr->job.TakeCheckpoint();
        jr->last_checkpoint_time_s = now_s_;
        jr->job.AddStall(
            fc.checkpoint_save_fraction *
            CheckpointStallSeconds(*jr->job.spec().model, config_.checkpoint));
        ++metrics_.checkpoints_taken;
        flight_.Record(now_s_, FlightEventKind::kCheckpoint, jr->job.id(),
                       jr->job.num_ps(), jr->job.num_workers(), 0.0, "periodic");
      }
    }
  }

  const FaultInjector::IntervalFaults faults = faults_->Advance(now_s_);
  if (!faults.recovered.empty() || !faults.crashed.empty()) {
    placeable_cap_valid_ = false;  // availability changed
  }
  if (faults.slow_factor != cluster_slow_factor_) {
    cluster_slow_factor_ = faults.slow_factor;
    trace_.RecordFactor(now_s_, SimEventType::kSlowdown, kClusterEventJobId,
                        cluster_slow_factor_);
    flight_.Record(now_s_, FlightEventKind::kSlowdown, -1, 0, 0,
                   cluster_slow_factor_);
  }
  for (int sid : faults.recovered) {
    servers_[static_cast<size_t>(sid)].SetAvailable(true);
    ++metrics_.server_recoveries;
    trace_.RecordServer(now_s_, SimEventType::kServerRecovered,
                        kClusterEventJobId, sid);
    flight_.Record(now_s_, FlightEventKind::kServerRecovered, -1, sid);
  }
  for (int sid : faults.crashed) {
    servers_[static_cast<size_t>(sid)].SetAvailable(false);
    ++metrics_.server_crashes;
    trace_.RecordServer(now_s_, SimEventType::kServerCrash, kClusterEventJobId,
                        sid);
    flight_.Record(now_s_, FlightEventKind::kServerCrash, -1, sid);
  }

  // Evict every job with a task on a currently-down server (not just the
  // newly crashed ones: an arrival placed while a server flapped must still
  // be caught). The next scheduling round reallocates survivors onto the
  // remaining capacity.
  if (faults_->servers_down() > 0) {
    for (auto& jr : jobs_) {
      if (jr == nullptr || !jr->arrived ||
          jr->job.state() == JobState::kCompleted ||
          jr->job.placement().empty()) {
        continue;
      }
      const JobPlacement& placement = jr->job.placement();
      bool hit = false;
      std::string detail;
      // Visit only the servers this job occupies (ascending, same order as
      // the dense scan) — O(tasks) instead of O(servers) per job.
      placement.ForEachUsed([&](size_t s, int w_k, int p_k) {
        if (hit || (w_k <= 0 && p_k <= 0)) {
          return;
        }
        if (!servers_[s].available()) {
          hit = true;
          detail = "server=" + std::to_string(servers_[s].id());
        }
      });
      if (hit) {
        EvictJob(jr.get(), detail);
      }
    }
  }

  // Unscripted container deaths: the job restores from its last checkpoint
  // in place (placement survives; only un-checkpointed progress is lost).
  if (fc.task_failure_prob > 0.0) {
    for (auto& jr : jobs_) {
      if (jr == nullptr || !jr->arrived || jr->job.state() != JobState::kRunning) {
        continue;
      }
      const int tasks = jr->job.num_workers() + jr->job.num_ps();
      const double p = faults_->JobFailureProbability(tasks);
      if (p > 0.0 && jr->fault_rng.Bernoulli(p)) {
        const double lost = jr->job.RollbackToCheckpoint();
        metrics_.rolled_back_steps += lost;
        jr->job.AddStall(
            CheckpointStallSeconds(*jr->job.spec().model, config_.checkpoint));
        auditor_.NoteRollback(jr->job.id());
        ++metrics_.task_failures;
        trace_.Record(now_s_, SimEventType::kTaskFailed, jr->job.id(),
                      jr->job.num_ps(), jr->job.num_workers());
        flight_.Record(now_s_, FlightEventKind::kTaskFailed, jr->job.id(),
                       jr->job.num_ps(), jr->job.num_workers());
      }
    }
  }
}

void Simulator::RunAudit() {
  std::vector<InvariantAuditor::JobView> views;
  InvariantAuditor::Counts counts;
  views.reserve(jobs_.size());
  for (const auto& jr : jobs_) {
    if (jr == nullptr) {
      // Retired runtime: it arrived and completed; it enters the accounting
      // identities through counts.retired instead of a view.
      ++counts.submitted;
      continue;
    }
    if (!jr->arrived) {
      continue;
    }
    ++counts.submitted;
    const Job& job = jr->job;
    views.push_back({job.id(), job.state(), job.steps_done(), job.num_ps(),
                     job.num_workers(), job.spec().ps_demand,
                     job.spec().worker_demand, &job.placement(),
                     job.spec().comm});
  }
  counts.completed_metric = metrics_.completed_jobs;
  counts.retired = retired_count_;
  const double check_time = now_s_ + config_.interval_s;
  // Most intervals run the O(changed) incremental check; every
  // full_audit_period-th check (and always, when incremental auditing is
  // off) re-derives everything from the views and cross-checks the tracker
  // against them, so incremental-state drift cannot go unnoticed.
  const bool full = !config_.incremental_audit || config_.full_audit_period <= 1 ||
                    auditor_.checks_run() % config_.full_audit_period == 0;
  if (full) {
    auditor_.Check(check_time, servers_, views, counts);
    if (config_.incremental_audit) {
      auditor_.CheckTrackerAgainstViews(check_time, views);
    }
  } else {
    auditor_.CheckIncremental(check_time, servers_, views, counts);
  }
  metrics_.audit_checks = auditor_.checks_run();
  metrics_.audit_violations = static_cast<int64_t>(auditor_.violations().size());
  flight_.Record(check_time, FlightEventKind::kAuditCheck, -1, 0, 0,
                 static_cast<double>(metrics_.audit_violations),
                 full ? "full" : "incremental");
  if (metrics_.audit_violations > 0 && flight_.enabled() && !flight_dumped_) {
    // Post-mortem: dump the recent-event tail once, at the first violation,
    // while the decisions that led up to it are still in the ring.
    flight_dumped_ = true;
    OPTIMUS_LOG(Error) << "invariant violation detected at t=" << check_time
                       << "s; dumping flight recorder (" << flight_.size()
                       << " recent events)";
    flight_.Dump(std::cerr);
  }
}

void Simulator::CollectRoundInputs(std::vector<JobRuntime*>* schedulable,
                                   std::vector<JobRuntime*>* frozen,
                                   Resources* out_capacity) {
  // Allocate against slot-quantized capacity so the allocators do not hand
  // out allocations that per-server fragmentation makes unplaceable.
  Resources reference_demand;
  for (const auto& jr : jobs_) {
    if (jr != nullptr && jr->arrived && jr->job.state() != JobState::kCompleted) {
      reference_demand = jr->job.spec().worker_demand;
      break;
    }
  }
  if (!placeable_cap_valid_ || !(placeable_cap_demand_ == reference_demand)) {
    placeable_cap_cache_ = PlaceableCapacity(servers_, reference_demand);
    placeable_cap_demand_ = reference_demand;
    placeable_cap_valid_ = true;
  }
  Resources capacity = placeable_cap_cache_;

  // Carve out the background-workload reservation (the caller pre-occupies
  // the per-server share; the scalar shrink happens here so the arithmetic
  // order is one fixed sequence for rounds and what-if queries alike).
  const double bg_share = BackgroundShare(now_s_);
  if (bg_share > 0.0) {
    capacity = capacity * (1.0 - bg_share);
  }

  for (auto& jr : jobs_) {
    if (jr == nullptr || !jr->arrived ||
        jr->job.state() == JobState::kCompleted) {
      continue;
    }
    if (jr->backoff_until_s > now_s_) {
      // Relaunch backoff after repeated evictions: the job sits out this
      // round entirely (neither schedulable nor frozen), capping the
      // relaunch storm a flapping server would otherwise cause.
      continue;
    }
    const bool budget_spent = !ScalingAllowed(jr->job.num_scalings(), config_.checkpoint);
    if (budget_spent && jr->job.num_workers() > 0) {
      frozen->push_back(jr.get());
      capacity -= jr->job.spec().worker_demand * jr->job.num_workers() +
                  jr->job.spec().ps_demand * jr->job.num_ps();
    } else {
      schedulable->push_back(jr.get());
    }
  }
  *out_capacity = capacity;
}

void Simulator::ScheduleActiveJobs() {
  // Split active jobs into schedulable and frozen (checkpoint budget spent:
  // they keep their allocation and are only re-placed).
  std::vector<JobRuntime*> schedulable;
  std::vector<JobRuntime*> frozen;
  Resources capacity;
  CollectRoundInputs(&schedulable, &frozen, &capacity);

  // Pre-occupy the background-workload reservation on every server (the
  // capacity shrink already happened in CollectRoundInputs).
  const double bg_share = BackgroundShare(now_s_);
  servers_scratch_ = servers_;
  std::vector<Server>& servers = servers_scratch_;
  if (bg_share > 0.0) {
    for (Server& s : servers) {
      if (s.available()) {
        s.Allocate(s.capacity() * bg_share);
      }
    }
  }

  // Scheduler-input construction is per-job-pure (model predictions read and
  // memoize only job-owned state), so it fans out over the pool; slot i is
  // owned by job i, keeping the result order-independent of thread count.
  std::vector<SchedJob> sched_jobs(schedulable.size());
  if (pool_ != nullptr && schedulable.size() > 1) {
    pool_->ParallelFor(static_cast<int64_t>(schedulable.size()),
                       [&](int64_t i) { sched_jobs[i] = MakeSchedJob(schedulable[i]); });
  } else {
    for (size_t i = 0; i < schedulable.size(); ++i) {
      sched_jobs[i] = MakeSchedJob(schedulable[i]);
    }
  }
  // One memoized-surface set per round, owned here (instead of the 2-arg
  // Allocate convenience overload building a hidden one) so its probe/eval
  // counters can feed the metrics registry. Decisions are identical.
  SpeedSurfaceSet surfaces;
  AllocationMap alloc;
  if (shard_plan_.num_shards() > 1) {
    // Two-phase sharded round (docs/ALGORITHMS.md §18): parallel per-shard
    // local passes warm the speed-surface memo tables, then the canonical
    // allocator runs the serial cross-shard fixup over the full capacity on
    // the warmed tables. Decisions, the live alloc_stats_ counters, and the
    // surface counters harvested below are bitwise identical to the
    // unsharded call (phase 1 writes its counters into sharded_stats_ only).
    const auto local_factory = [this](OptimusAllocRoundStats* stats) {
      return MakeAllocator(config_, stats);
    };
    alloc = ShardedAllocate(shard_plan_, sched_jobs, capacity, *allocator_,
                            local_factory, &surfaces, pool_.get(),
                            &sharded_stats_);
  } else {
    alloc = allocator_->Allocate(sched_jobs, capacity, &surfaces);
  }
  surface_probes_ += surfaces.probes();
  surface_evals_ += surfaces.evals();
  surface_count_ += static_cast<int64_t>(surfaces.num_surfaces());

  // Scaling hysteresis: switching (p, w) costs a checkpoint-restart, so keep
  // the old allocation when the estimated completion-time saving does not
  // cover that stall (§7 "Scaling overhead"). DRF is left as the oblivious
  // work-conserving baseline the paper compares against.
  if (config_.allocator != AllocatorPolicy::kDrf) {
    for (size_t i = 0; i < schedulable.size(); ++i) {
      JobRuntime* jr = schedulable[i];
      auto it = alloc.find(jr->job.id());
      if (it == alloc.end()) {
        continue;
      }
      const Allocation old_alloc{jr->job.num_ps(), jr->job.num_workers()};
      Allocation& next = it->second;
      const SchedJob& sj = sched_jobs[i];
      if (!ActiveAllocation(old_alloc, sj.comm) ||
          !ActiveAllocation(next, sj.comm) || next == old_alloc) {
        continue;
      }
      const double f_old = sj.speed(old_alloc.num_ps, old_alloc.num_workers);
      const double f_new = sj.speed(next.num_ps, next.num_workers);
      if (f_old <= 0.0 || f_new <= 0.0) {
        continue;
      }
      const double t_old = sj.remaining_epochs / f_old;
      const double t_new = sj.remaining_epochs / f_new;
      const double stall =
          CheckpointStallSeconds(*jr->job.spec().model, config_.checkpoint);
      if (t_old - t_new < stall) {
        next = old_alloc;
      }
    }
  }

  // Placement covers frozen jobs (at their existing counts) plus newly
  // allocated ones.
  // Each job donates last round's placement buffers for reuse (recycle): the
  // apply loop below unconditionally reassigns every active job's placement,
  // so nothing reads the moved-from state. Jobs without sized buffers (first
  // placement, or buffers harvested on pause/eviction) draw from the spare
  // pool first so steady-state rounds allocate no server-sized vectors.
  auto donor = [this](JobRuntime* jr) {
    JobPlacement* p = jr->job.mutable_placement();
    if (p->empty() && !placement_spares_.empty()) {
      *p = std::move(placement_spares_.back());
      placement_spares_.pop_back();
    }
    return p;
  };
  std::vector<PlacementJobInput> inputs;
  for (JobRuntime* jr : frozen) {
    inputs.push_back({jr->job.id(),
                      {jr->job.num_ps(), jr->job.num_workers()},
                      jr->job.spec().worker_demand,
                      jr->job.spec().ps_demand,
                      donor(jr),
                      jr->job.spec().comm});
  }
  for (JobRuntime* jr : schedulable) {
    Allocation a;
    if (auto it = alloc.find(jr->job.id()); it != alloc.end()) {
      a = it->second;
    }
    inputs.push_back({jr->job.id(), a, jr->job.spec().worker_demand,
                      jr->job.spec().ps_demand, donor(jr),
                      jr->job.spec().comm});
  }
  // Sharded placement keeps one lazy heap per shard and pops via a
  // tournament reproducing the global most-free order, with compact
  // (occupied-servers-only) output vectors; it is decision-identical to the
  // legacy kOptimusPack path. Other placement policies take the legacy path.
  const bool sharded_placement =
      shard_plan_.num_shards() > 1 &&
      config_.placement == PlacementPolicy::kOptimusPack;
  PlacementResult placed =
      sharded_placement
          ? PlaceJobsSharded(shard_plan_, inputs, &servers)
          : PlaceJobs(config_.placement, inputs, &servers,
                      /*shrink_to_fit=*/true, config_.rack_size);

  // Index the placement result once instead of two map lookups per job: the
  // two maps carry identical key sets (both filled on successful placement),
  // so one synchronized walk scatters them into job-index-addressed slots.
  std::vector<JobPlacement*> placement_by_index(jobs_.size(), nullptr);
  std::vector<Allocation> alloc_by_index(jobs_.size());
  {
    auto pit = placed.placements.begin();
    auto ait = placed.effective_alloc.begin();
    for (; pit != placed.placements.end(); ++pit, ++ait) {
      OPTIMUS_CHECK(ait != placed.effective_alloc.end());
      OPTIMUS_CHECK_EQ(pit->first, ait->first);
      const auto idx = job_index_.find(pit->first);
      OPTIMUS_CHECK(idx != job_index_.end());
      placement_by_index[idx->second] = &pit->second;
      alloc_by_index[idx->second] = ait->second;  // may be shrunk by placement
    }
    OPTIMUS_CHECK(ait == placed.effective_alloc.end());
  }

  // Batch decisions ride on the allocator's own output (placement may
  // rebuild Allocation structs and is not required to preserve the advisory
  // global_batch). -1 = not schedulable this round: frozen jobs keep their
  // current override.
  std::vector<int> batch_by_index(jobs_.size(), -1);
  for (JobRuntime* jr : schedulable) {
    const auto idx = job_index_.find(jr->job.id());
    OPTIMUS_CHECK(idx != job_index_.end());
    const auto it = alloc.find(jr->job.id());
    batch_by_index[idx->second] = it != alloc.end() ? it->second.global_batch : 0;
  }

  // Apply decisions.
  for (size_t job_idx = 0; job_idx < jobs_.size(); ++job_idx) {
    auto& jr = jobs_[job_idx];
    if (jr == nullptr || !jr->arrived ||
        jr->job.state() == JobState::kCompleted) {
      continue;
    }
    const int id = jr->job.id();
    JobPlacement* placement = placement_by_index[job_idx];
    const Allocation a = alloc_by_index[job_idx];
    const bool placeable =
        placement != nullptr && ActiveAllocation(a, jr->job.spec().comm);

    const int old_ps = jr->job.num_ps();
    const JobState old_state = jr->job.state();
    bool scaled = false;
    if (placeable) {
      const bool first_schedule = old_state == JobState::kPending;
      if (!config_.sparse_placement && !placement->compact()) {
        // Baseline mode: drop the sparse index so every placement walk falls
        // back to the dense O(n_servers) scan. ForEachUsed visits the same
        // nonzero entries either way, so outputs are bit-identical. Compact
        // placements (sharded fast path) have no dense vectors to fall back
        // to, so they keep their index.
        placement->used_servers.clear();
      }
      // `placed` is dead after this loop, so the placement's server vectors
      // can move into the job instead of being copied.
      scaled = jr->job.SetAllocation(a.num_ps, a.num_workers, std::move(*placement));
      if (batch_by_index[job_idx] >= 0) {
        // 0 resets to the configured batch (non-adaptive policies and
        // non-adaptive jobs); >0 is a batch-adaptive policy's choice. A
        // batch-only change is not a scaling event: same (p, w), no
        // checkpoint stall — the framework just feeds larger mini-batches.
        jr->job.set_batch_override(batch_by_index[job_idx]);
      }
      auditor_.SetPlacement(id, jr->job.spec().worker_demand,
                            jr->job.spec().ps_demand, jr->job.placement());
      jr->job.set_state(JobState::kRunning);
      if (first_schedule) {
        trace_.Record(now_s_, SimEventType::kScheduled, id, a.num_ps, a.num_workers);
        flight_.Record(now_s_, FlightEventKind::kScheduled, id, a.num_ps,
                       a.num_workers);
      } else if (old_state == JobState::kPaused) {
        trace_.Record(now_s_, SimEventType::kResumed, id, a.num_ps, a.num_workers);
        flight_.Record(now_s_, FlightEventKind::kResumed, id, a.num_ps,
                       a.num_workers);
      } else if (scaled) {
        trace_.Record(now_s_, SimEventType::kScaled, id, a.num_ps, a.num_workers);
        flight_.Record(now_s_, FlightEventKind::kScaled, id, a.num_ps,
                       a.num_workers);
      }
    } else {
      HarvestPlacement(&jr->job);
      jr->job.SetAllocation(0, 0, {});
      jr->job.set_batch_override(0);
      auditor_.ClearPlacement(id);
      jr->job.set_state(jr->job.steps_done() > 0 ? JobState::kPaused
                                                 : JobState::kPending);
      if (old_state == JobState::kRunning) {
        trace_.Record(now_s_, SimEventType::kPaused, id);
        flight_.Record(now_s_, FlightEventKind::kPaused, id);
      }
    }
    if (scaled) {
      // Scaling saves the model and restarts from it (§5.4), so the scaled-to
      // point is also the job's latest durable checkpoint.
      jr->job.AddStall(CheckpointStallSeconds(*jr->job.spec().model, config_.checkpoint));
      jr->job.TakeCheckpoint();
      jr->last_checkpoint_time_s = now_s_;
      ++metrics_.total_scalings;
      flight_.Record(now_s_, FlightEventKind::kCheckpoint, id, jr->job.num_ps(),
                     jr->job.num_workers(), 0.0, "scaling");
    }
    // Data serving (§5.1): rebalance training chunks whenever the worker
    // count changes; moved chunks stall the job briefly.
    if (jr->job.num_workers() > 0 &&
        jr->job.num_workers() != jr->data->num_workers()) {
      const int64_t moved = jr->data->Rebalance(jr->job.num_workers());
      if (moved > 0 && config_.chunk_move_s > 0.0) {
        jr->job.AddStall(static_cast<double>(moved) * config_.chunk_move_s);
      }
    }
    if (jr->job.num_ps() != old_ps || (placeable && !jr->load_valid)) {
      RecomputeLoad(jr.get());
    }
    if (jr->job.state() == JobState::kRunning &&
        straggler_.Step(&jr->job, &jr->rng)) {
      trace_.Record(now_s_, SimEventType::kStragglerReplaced, id, jr->job.num_ps(),
                    jr->job.num_workers());
    }
  }
}

void Simulator::AdvanceJob(JobRuntime* jr, AdvanceOutcome* out) {
  const double dt = config_.interval_s;
  Job& job = jr->job;
  const JobSpec& spec = job.spec();

  // Stalls (checkpoint restore, straggler relaunch) eat into the interval.
  const double stalled = job.ConsumeStall(dt);
  const double train_time = dt - stalled;
  if (train_time <= 0.0) {
    return;
  }

  const double noise = jr->rng.LogNormalFactor(config_.runtime_noise_sd);
  // steps/s; cluster-wide slowdown bursts scale every job equally.
  const double speed = TrueSpeed(*jr) * noise * cluster_slow_factor_;
  if (speed <= 0.0) {
    return;
  }

  // The job made it through a full interval with live tasks: clear the
  // eviction streak so the relaunch backoff starts fresh next time.
  jr->consecutive_evictions = 0;
  jr->backoff_until_s = -1.0;

  const double steps_before = job.steps_done();
  const double steps_after = steps_before + speed * train_time;
  const double spe = static_cast<double>(spec.StepsPerEpoch());

  // Walk epoch boundaries crossed this interval; each completed epoch
  // yields one observed epoch-mean loss for convergence detection.
  const int64_t first_epoch = static_cast<int64_t>(steps_before / spe) + 1;
  const int64_t last_epoch = static_cast<int64_t>(steps_after / spe);
  bool completed = false;
  for (int64_t e = first_epoch; e <= last_epoch && !completed; ++e) {
    const double epoch_loss =
        jr->curve.TrueLossAtEpoch(static_cast<double>(e)) *
        jr->rng.LogNormalFactor(spec.model->loss.noise_sd * 0.3);
    if (job.RecordEpochLoss(epoch_loss)) {
      // Converged at this epoch boundary: interpolate the wall time.
      const double boundary_steps = static_cast<double>(e) * spe;
      const double t_done = stalled + (boundary_steps - steps_before) / speed;
      job.AdvanceSteps(boundary_steps - steps_before);
      job.MarkCompleted(now_s_ + std::min(t_done, dt));
      completed = true;
      out->completed = true;
      out->completed_epoch = e;
    }
  }
  if (!completed) {
    job.AdvanceSteps(steps_after - steps_before);
  }

  // Learning-rate decay (§7): once the job crosses its drop epoch, restart
  // the convergence fitting — the old curve segment no longer predicts the
  // new one.
  if (spec.lr_drop.has_value() && !jr->lr_drop_handled &&
      job.EpochsDone() >= spec.lr_drop->epoch) {
    jr->lr_drop_handled = true;
    if (jr->conv != nullptr) {
      jr->conv->Reset();
    }
    if (jr->multi_conv != nullptr) {
      jr->multi_conv->Reset();
    }
    out->lr_drop = true;
  }
  out->event_ps = job.num_ps();
  out->event_workers = job.num_workers();

  if (!config_.oracle_estimates) {
    // Feed the convergence model with per-step loss observations spread
    // over the interval, and the speed model with the measured speed.
    const double observed_until = job.steps_done();
    const int n = config_.conv_samples_per_interval;
    for (int i = 1; i <= n; ++i) {
      const double step =
          steps_before + (observed_until - steps_before) * i / n;
      if (step <= steps_before) {
        continue;
      }
      const double sample =
          jr->curve.SampleLossAtStep(static_cast<int64_t>(step), &jr->rng);
      jr->conv->AddSample(step, sample);
      if (jr->multi_conv != nullptr) {
        jr->multi_conv->AddSample(step, sample);
      }
    }
    jr->conv->Fit();
    if (jr->multi_conv != nullptr) {
      jr->multi_conv->Fit();
    }
    // All-reduce measurements land on the model's p = 1 row (the grid its
    // estimates are read from; the job itself runs zero PS tasks).
    const int sample_ps =
        spec.comm == CommMode::kAllReduce ? 1 : job.num_ps();
    // The fitted surface stays denominated at the configured (reference)
    // batch: under a scheduler batch override the measured speed is converted
    // back through the same analytic step-time ratio and efficiency factor
    // TrueSpeed applied, so batch-adaptive rounds never contaminate the
    // reference surface that batch_speed() scales from.
    double sample_speed = speed;
    const int measure_override =
        spec.mode == TrainingMode::kSync ? job.batch_override() : 0;
    if (measure_override > 0) {
      StepTimeInputs min;
      min.model = spec.model;
      min.mode = spec.mode;
      min.comm = spec.comm;
      min.num_ps = job.num_ps();
      min.num_workers = job.num_workers();
      min.async_minibatch = spec.AsyncMinibatch();
      min.load = jr->load;
      min.load_valid = jr->load_valid;
      min.placement_ref = &job.placement();
      min.slowest_worker_factor = job.slowest_worker_factor();
      min.net_bw_bps = jr->net_bw_bps;
      min.global_batch = measure_override;
      const double s_b = TrainingSpeed(min, config_.comm);
      min.global_batch = spec.GlobalBatch();
      const double s_ref = TrainingSpeed(min, config_.comm);
      if (s_b > 0.0 && s_ref > 0.0) {
        sample_speed = speed * (s_ref / s_b) /
                       BatchProgressFactor(spec.GradNoiseScale(),
                                           spec.GlobalBatch(), measure_override);
      }
    }
    jr->speed->AddSample(sample_ps, job.num_workers(), sample_speed);
    jr->speed->Fit();
  }

  // Utilization snapshot (Fig 14): compute-busy share of a step on workers;
  // update-busy share on parameter servers.
  StepTimeInputs in;
  in.model = spec.model;
  in.mode = spec.mode;
  in.comm = spec.comm;
  in.num_ps = job.num_ps();
  in.num_workers = job.num_workers();
  const int util_batch_override =
      spec.mode == TrainingMode::kSync ? job.batch_override() : 0;
  in.global_batch =
      util_batch_override > 0 ? util_batch_override : spec.GlobalBatch();
  in.async_minibatch = spec.AsyncMinibatch();
  in.load = jr->load;
  in.load_valid = jr->load_valid;
  in.placement_ref = &job.placement();
  in.slowest_worker_factor = job.slowest_worker_factor();
  in.net_bw_bps = jr->net_bw_bps;
  const StepTimeBreakdown b = ComputeStepTime(in, config_.comm);
  if (b.total_s > 0.0) {
    jr->last_worker_util = 100.0 * (b.forward_s + b.backward_s) / b.total_s;
    jr->last_ps_util = 100.0 * (b.update_s + b.overhead_s) / b.total_s;
  }
  out->tasks = job.num_workers() + job.num_ps();
  out->worker_util = jr->last_worker_util;
  out->ps_util = jr->last_ps_util;
  out->ran = true;
}

void Simulator::AdvanceInterval() {
  const double dt = config_.interval_s;

  // Fan the per-job stepping out over the pool. AdvanceJob touches only
  // job-owned state (the job, its models, its RNG streams) and buffers every
  // shared-state effect in its outcome slot; the serial merge below applies
  // those effects in job order, so the run is bitwise identical to the
  // single-threaded one for any thread count.
  std::vector<JobRuntime*> running;
  running.reserve(jobs_.size());
  for (auto& jr : jobs_) {
    if (jr != nullptr && jr->arrived && jr->job.state() == JobState::kRunning) {
      running.push_back(jr.get());
    }
  }
  std::vector<AdvanceOutcome> outcomes(running.size());
  if (pool_ != nullptr && running.size() > 1) {
    pool_->ParallelFor(static_cast<int64_t>(running.size()),
                       [&](int64_t i) { AdvanceJob(running[i], &outcomes[i]); });
  } else {
    for (size_t i = 0; i < running.size(); ++i) {
      AdvanceJob(running[i], &outcomes[i]);
    }
  }

  int running_tasks = 0;
  RunningStat worker_util;
  RunningStat ps_util;
  std::vector<size_t> done;
  for (size_t i = 0; i < running.size(); ++i) {
    const AdvanceOutcome& out = outcomes[i];
    JobRuntime* jr = running[i];
    if (out.completed) {
      ++completed_;
      ++metrics_.completed_jobs;
      auditor_.ClearPlacement(jr->job.id());
      HarvestPlacement(&jr->job);
      done.push_back(i);
    }
    if (!out.ran) {
      continue;
    }
    running_tasks += out.tasks;
    worker_util.Add(out.worker_util);
    ps_util.Add(out.ps_util);
  }

  // Record completions at their analytic times (interpolated to the epoch
  // boundary by AdvanceJob), not the interval boundary: quantizing the
  // trace/flight stamp to now + dt inflated apparent completion times by up
  // to a full interval. JCT itself was always exact — MarkCompleted
  // interpolates — so only the recorded timestamps move. Emission is sorted
  // by (time, job id) because the trace requires time-ordered records and
  // completions land anywhere inside the interval; lr-drop events follow at
  // the boundary, at or after every completion time.
  std::sort(done.begin(), done.end(), [&](size_t a, size_t b) {
    const double ta = running[a]->job.completion_time_s();
    const double tb = running[b]->job.completion_time_s();
    if (ta != tb) {
      return ta < tb;
    }
    return running[a]->job.id() < running[b]->job.id();
  });
  for (size_t i : done) {
    const AdvanceOutcome& out = outcomes[i];
    JobRuntime* jr = running[i];
    const double done_s = jr->job.completion_time_s();
    trace_.RecordEpochs(done_s, SimEventType::kCompleted, jr->job.id(),
                        out.event_ps, out.event_workers, out.completed_epoch);
    flight_.Record(done_s, FlightEventKind::kCompleted, jr->job.id(),
                   out.event_ps, out.event_workers,
                   static_cast<double>(out.completed_epoch));
    if (m_.jct_seconds != nullptr) {
      m_.jct_seconds->Record(jr->job.Jct());
      m_.completed_epochs->Record(static_cast<double>(out.completed_epoch));
    }
  }
  for (size_t i = 0; i < running.size(); ++i) {
    if (outcomes[i].lr_drop) {
      trace_.Record(now_s_ + dt, SimEventType::kLearningRateDrop,
                    running[i]->job.id(), outcomes[i].event_ps,
                    outcomes[i].event_workers);
    }
  }

  if (config_.record_timeline) {
    metrics_.timeline.push_back({now_s_ + dt, running_tasks,
                                 worker_util.count() > 0 ? worker_util.mean() : 0.0,
                                 ps_util.count() > 0 ? ps_util.mean() : 0.0});
  }
  if (m_.running_tasks != nullptr) {
    m_.running_tasks->Set(static_cast<double>(running_tasks));
  }
}

bool Simulator::StepInterval() {
  if (completed_ >= static_cast<int>(jobs_.size()) && pending_remaining() == 0) {
    return false;
  }
  if (now_s_ >= config_.max_sim_time_s) {
    // Batch runs stop at the cap via the return value below and never call
    // again; re-entrant callers (AdvanceTo) may — refuse to step past it.
    return false;
  }
  ActivateArrivals();

  // Fast-forward to the next arrival when the cluster is idle.
  bool any_active = false;
  for (const auto& jr : jobs_) {
    if (jr != nullptr && jr->arrived && jr->job.state() != JobState::kCompleted) {
      any_active = true;
      break;
    }
  }
  if (!any_active) {
    double next_arrival = std::numeric_limits<double>::infinity();
    for (const auto& jr : jobs_) {
      if (jr != nullptr && !jr->arrived) {
        next_arrival = std::min(next_arrival, jr->job.spec().arrival_time_s);
      }
    }
    if (pending_remaining() > 0) {
      // Streaming: the head of the pending queue is the earliest
      // unmaterialized arrival (specs are arrival-sorted).
      next_arrival = std::min(next_arrival,
                              pending_specs_[pending_next_].arrival_time_s);
    }
    if (!std::isfinite(next_arrival)) {
      return false;  // nothing left anywhere
    }
    // Snap to the next interval boundary at or after the arrival.
    const double intervals =
        std::ceil((next_arrival - now_s_) / config_.interval_s);
    now_s_ += std::max(1.0, intervals) * config_.interval_s;
    ActivateArrivals();
  }

  // Per-phase wall-clock accounting via the profiler (profiling only; never
  // feeds back into simulated time or decisions, so determinism is
  // unaffected). The RunMetrics wall_* fields mirror the accumulated phase
  // totals so interval-stepping callers keep seeing cumulative values.
  {
    ScopedTimer timer(&profiler_, phase_faults_);
    ApplyFaults();
  }
  {
    ScopedTimer timer(&profiler_, phase_schedule_);
    ScheduleActiveJobs();
    // Placements are final for the interval: resolve per-job bandwidths over
    // them before anyone trains at TrueSpeed.
    RefreshNetwork();
  }
  {
    ScopedTimer timer(&profiler_, phase_advance_);
    AdvanceInterval();
  }
  if (config_.audit) {
    ScopedTimer timer(&profiler_, phase_audit_);
    RunAudit();
  }
  metrics_.wall_faults_s = profiler_.seconds(phase_faults_);
  metrics_.wall_schedule_s = profiler_.seconds(phase_schedule_);
  metrics_.wall_advance_s = profiler_.seconds(phase_advance_);
  metrics_.wall_audit_s = profiler_.seconds(phase_audit_);
  now_s_ += config_.interval_s;
  SampleObservability();
  RetireCompleted();
  return (completed_ < static_cast<int>(jobs_.size()) ||
          pending_remaining() > 0) &&
         now_s_ < config_.max_sim_time_s;
}

RunMetrics Simulator::Run() {
  if (config_.engine == SimEngine::kEvents) {
    RunEvents();
  } else {
    while (StepInterval()) {
    }
  }

  // Aggregate. Rebuilt from scratch so Run() stays re-entrant — a service
  // session may call it after partial AdvanceTo stepping, or more than once.
  metrics_.jcts.clear();
  double first_arrival = std::numeric_limits<double>::infinity();
  double last_completion = 0.0;
  double overhead_sum = 0.0;
  int overhead_count = 0;
  for (size_t i = 0; i < jobs_.size(); ++i) {
    const auto& jr = jobs_[i];
    if (jr == nullptr) {
      // Retired under streaming admission: the compact record preserves the
      // slot's contribution so aggregation stays bitwise batch-identical
      // (same per-slot visit order, same floating-point accumulation).
      OPTIMUS_CHECK(i < retired_.size() && retired_[i].valid)
          << "job slot " << i << " is null but has no retired record";
      const RetiredJob& r = retired_[i];
      first_arrival = std::min(first_arrival, r.arrival_time_s);
      if (r.killed) {
        continue;
      }
      metrics_.jcts.push_back(r.jct_s);
      last_completion = std::max(last_completion, r.completion_time_s);
      if (r.jct_s > 0.0) {
        overhead_sum += r.total_stall_s / r.jct_s;
        ++overhead_count;
      }
      continue;
    }
    first_arrival = std::min(first_arrival, jr->job.spec().arrival_time_s);
    if (jr->killed) {
      continue;  // cancelled, not converged: no JCT, no makespan contribution
    }
    if (jr->job.state() == JobState::kCompleted) {
      metrics_.jcts.push_back(jr->job.Jct());
      last_completion = std::max(last_completion, jr->job.completion_time_s());
      if (jr->job.Jct() > 0.0) {
        overhead_sum += jr->job.total_stall_s() / jr->job.Jct();
        ++overhead_count;
      }
    }
  }
  // Pending specs that never materialized (simulation-time cap) still mark
  // the workload's start, exactly as unarrived constructor jobs do in batch.
  for (size_t i = pending_next_; i < pending_specs_.size(); ++i) {
    first_arrival = std::min(first_arrival, pending_specs_[i].arrival_time_s);
  }
  metrics_.avg_jct_s = Mean(metrics_.jcts);
  // Guard the empty-jobs case too: with no jobs, first_arrival stays +inf and
  // the subtraction would poison the makespan with -inf.
  metrics_.makespan_s = metrics_.jcts.empty() || !std::isfinite(first_arrival)
                            ? 0.0
                            : last_completion - first_arrival;
  metrics_.scaling_overhead_fraction =
      overhead_count > 0 ? overhead_sum / overhead_count : 0.0;
  metrics_.straggler_replacements = straggler_.replacements();

  if (config_.audit && !auditor_.ok()) {
    if (config_.audit_fatal) {
      OPTIMUS_LOG(Fatal) << "invariant audit failed: " << auditor_.Summary();
    }
    OPTIMUS_LOG(Error) << "invariant audit failed: " << auditor_.Summary();
  }
  return metrics_;
}

void Simulator::AdvanceTo(double t) {
  if (config_.engine == SimEngine::kEvents) {
    StepEventsUntil(t);
    return;
  }
  while (now_s_ < t) {
    if (!StepInterval()) {
      break;
    }
  }
}

bool Simulator::SubmitJob(const JobSpec& spec, std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) {
      *error = message;
    }
    return false;
  };
  if (spec.model == nullptr) {
    return fail("job model is null");
  }
  if (config_.streaming) {
    // Online submission splices into jobs_ out of arrival order; streaming
    // admission's batch-identity argument requires materialization in spec
    // order, so the two modes are mutually exclusive.
    return fail("online SubmitJob is not supported with streaming admission");
  }
  if (job_index_.count(spec.id) > 0) {
    return fail("job id " + std::to_string(spec.id) + " already exists");
  }
  if (spec.arrival_time_s < now_s_) {
    std::ostringstream os;
    os << "arrival_time_s " << spec.arrival_time_s << " is in the past (now "
       << now_s_ << ")";
    return fail(os.str());
  }

  // Mirror the constructor's per-job initialization exactly: the RNG streams
  // are split from the run seed by job id, so a job submitted online draws
  // the same streams it would have drawn as a constructor spec.
  auto jr = std::make_unique<JobRuntime>(spec);
  jr->rng = rng_.Split(static_cast<uint64_t>(spec.id) + 1000);
  jr->fault_rng = rng_.Split(static_cast<uint64_t>(spec.id) + 500000);
  jr->error_sign = jr->rng.Bernoulli(0.5) ? 1 : -1;
  jr->blocks = GenerateParamBlocks(*spec.model);
  jr->data = std::make_unique<DataServing>(
      EstimateDatasetBytes(*spec.model, spec.dataset_scale));
  jr->true_total_epochs = static_cast<double>(
      jr->curve.EpochsToConverge(spec.convergence_delta, spec.patience));
  job_index_.emplace(spec.id, jobs_.size());
  jobs_.push_back(std::move(jr));
  ++metrics_.total_jobs;

  if (config_.engine == SimEngine::kEvents && events_seeded_) {
    events_.Push({spec.arrival_time_s, SimEventKind::kArrival, spec.id, 0});
    if (pending_rounds_ == 0) {
      // The round chain drained after a round observed nothing left
      // anywhere. Re-seed it at the boundary that round would have chosen
      // had it known this arrival — the same snap HandleRoundEvent applies —
      // so the session stays batch-identical.
      const double intervals = std::ceil(
          (spec.arrival_time_s - last_round_s_) / config_.interval_s);
      events_.Push({last_round_s_ + std::max(1.0, intervals) * config_.interval_s,
                    SimEventKind::kRound, -1, 0});
      ++pending_rounds_;
    }
  }
  return true;
}

bool Simulator::KillJob(int job_id, std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) {
      *error = message;
    }
    return false;
  };
  auto it = job_index_.find(job_id);
  if (it == job_index_.end()) {
    return fail("unknown job id " + std::to_string(job_id));
  }
  if (jobs_[it->second] == nullptr) {
    return fail("job " + std::to_string(job_id) + " already completed");
  }
  JobRuntime* jr = jobs_[it->second].get();
  Job& job = jr->job;
  if (job.state() == JobState::kCompleted) {
    return fail("job " + std::to_string(job_id) + " already completed");
  }
  const int event_ps = job.num_ps();
  const int event_workers = job.num_workers();
  if (job.num_workers() > 0 || job.num_ps() > 0) {
    HarvestPlacement(&job);
    job.SetAllocation(0, 0, {});
  }
  auditor_.ClearPlacement(job.id());
  // Event engine: stop the segment and invalidate pending epoch events.
  // Progress since the job's last event is discarded — the job is being
  // cancelled — and the kill is deterministic either way.
  jr->seg_active = false;
  ++jr->gen;
  // Kills count as completions in the accounting invariants (the auditor
  // checks completed states against the completion metric). A job killed
  // before its arrival is marked arrived so it never activates later.
  jr->arrived = true;
  jr->killed = true;
  ++metrics_.completed_jobs;
  job.MarkCompleted(now_s_);
  ++completed_;
  ++metrics_.jobs_killed;
  trace_.Record(now_s_, SimEventType::kKilled, job.id(), event_ps, event_workers);
  flight_.Record(now_s_, FlightEventKind::kEvicted, job.id(), event_ps,
                 event_workers, 0.0, "killed");
  return true;
}

WhatIfResult Simulator::WhatIf(const JobSpec& candidate) {
  OPTIMUS_CHECK(candidate.model != nullptr) << "what-if candidate model is null";
  std::vector<JobRuntime*> schedulable;
  std::vector<JobRuntime*> frozen;
  Resources capacity;
  CollectRoundInputs(&schedulable, &frozen, &capacity);

  std::vector<SchedJob> existing;
  existing.reserve(schedulable.size());
  for (JobRuntime* jr : schedulable) {
    if (jr->job.id() == candidate.id) {
      continue;  // hypothetical re-submission of a live id: compare without it
    }
    existing.push_back(MakeSchedJob(jr));
  }

  // Candidate view: the analytic ground-truth speed model (the oracle path
  // without error injection) and the scheduler's prior for unfitted jobs.
  // No RNG draw, no model fit — the query must leave the session bitwise
  // unchanged.
  SchedJob cand;
  cand.job_id = candidate.id;
  cand.mode = candidate.mode;
  cand.comm = candidate.comm;
  cand.worker_demand = candidate.worker_demand;
  cand.ps_demand = candidate.ps_demand;
  cand.max_ps = candidate.max_ps;
  cand.max_workers = candidate.max_workers;
  if (candidate.comm == CommMode::kAllReduce) {
    cand.max_ps = 0;
    cand.ps_demand = Resources();
  }
  cand.remaining_epochs = config_.default_remaining_epochs;
  const JobSpec spec = candidate;
  const double spe = static_cast<double>(spec.StepsPerEpoch());
  const CommConfig comm = config_.comm;
  cand.speed = [spec, spe, comm](int p, int w) {
    StepTimeInputs in;
    in.model = spec.model;
    in.mode = spec.mode;
    in.comm = spec.comm;
    in.num_ps = p;
    in.num_workers = w;
    in.global_batch = spec.GlobalBatch();
    in.async_minibatch = spec.AsyncMinibatch();
    return TrainingSpeed(in, comm) / spe;
  };

  // A fresh allocator instance so the query does not advance the round-stats
  // counters the live allocator shares with the metrics registry.
  OptimusAllocRoundStats scratch_stats;
  std::unique_ptr<Allocator> allocator = MakeAllocator(config_, &scratch_stats);
  return EvaluateAdmission(*allocator, existing, cand, capacity);
}

}  // namespace optimus
