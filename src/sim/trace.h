// Structured event trace of a simulation run.
//
// Records the scheduler-visible lifecycle of every job (arrival, scheduling,
// elastic rescaling, pauses, straggler replacements, learning-rate drops,
// completion) so that runs can be inspected, diffed, and exported to CSV —
// the simulator-side analogue of a production scheduler's audit log.

#ifndef SRC_SIM_TRACE_H_
#define SRC_SIM_TRACE_H_

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace optimus {

enum class SimEventType {
  kArrival,
  kScheduled,       // first time a job receives resources
  kScaled,          // (p, w) changed for a running job
  kPaused,          // active job received no placeable resources
  kResumed,         // previously paused job running again
  kStragglerReplaced,
  kLearningRateDrop,
  kCompleted,
  // Fault-injection events (src/sim/fault_injector.h). Cluster-scoped events
  // (server crash/recovery, slowdown changes) carry kClusterEventJobId.
  kServerCrash,
  kServerRecovered,
  kTaskFailed,      // container death; job restored from checkpoint in place
  kEvicted,         // job lost its tasks to a server crash; rolled back
  kSlowdown,        // cluster-wide speed factor changed (detail: factor=F)
};

// job_id used for events that concern the cluster rather than one job.
inline constexpr int kClusterEventJobId = -1;

const char* SimEventTypeName(SimEventType type);

struct SimEvent {
  double time_s = 0.0;
  SimEventType type = SimEventType::kArrival;
  int job_id = 0;
  // Allocation after the event (0/0 where not meaningful).
  int num_ps = 0;
  int num_workers = 0;
  std::string detail;
};

class EventTrace {
 public:
  void Record(double time_s, SimEventType type, int job_id, int num_ps = 0,
              int num_workers = 0, std::string detail = "");

  const std::vector<SimEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }

  // Events of one job, in time order.
  std::vector<SimEvent> ForJob(int job_id) const;

  // Number of events per type.
  std::map<SimEventType, int64_t> CountByType() const;

  // CSV export: time_s,event,job,ps,workers,detail.
  void WriteCsv(std::ostream& os) const;

 private:
  std::vector<SimEvent> events_;
};

}  // namespace optimus

#endif  // SRC_SIM_TRACE_H_
