// Structured event trace of a simulation run.
//
// Records the scheduler-visible lifecycle of every job (arrival, scheduling,
// elastic rescaling, pauses, straggler replacements, learning-rate drops,
// completion) so that runs can be inspected, diffed, and exported to CSV —
// the simulator-side analogue of a production scheduler's audit log.
//
// Recording is a hot path (the simulator emits several events per job per
// interval at cluster scale), so events are buffered as compact raw records:
// the typed Record* overloads store a numeric argument instead of building a
// "key=value" string per event, and free-form detail strings are pooled. The
// familiar SimEvent view (with its detail string) is materialized lazily, on
// first read, in one pass.

#ifndef SRC_SIM_TRACE_H_
#define SRC_SIM_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace optimus {

enum class SimEventType {
  kArrival,
  kScheduled,       // first time a job receives resources
  kScaled,          // (p, w) changed for a running job
  kPaused,          // active job received no placeable resources
  kResumed,         // previously paused job running again
  kStragglerReplaced,
  kLearningRateDrop,
  kCompleted,
  // Fault-injection events (src/sim/fault_injector.h). Cluster-scoped events
  // (server crash/recovery, slowdown changes) carry kClusterEventJobId.
  kServerCrash,
  kServerRecovered,
  kTaskFailed,      // container death; job restored from checkpoint in place
  kEvicted,         // job lost its tasks to a server crash; rolled back
  kSlowdown,        // cluster-wide speed factor changed (detail: factor=F)
  kKilled,          // job cancelled by an online kill request (service mode)
};

// job_id used for events that concern the cluster rather than one job.
inline constexpr int kClusterEventJobId = -1;

const char* SimEventTypeName(SimEventType type);

struct SimEvent {
  double time_s = 0.0;
  SimEventType type = SimEventType::kArrival;
  int job_id = 0;
  // Allocation after the event (0/0 where not meaningful).
  int num_ps = 0;
  int num_workers = 0;
  std::string detail;
};

class EventTrace {
 public:
  // Pre-sizes the raw event buffer (one reservation per run beats repeated
  // regrowth at cluster scale). No-op in hash-only mode.
  void Reserve(size_t n);

  // Hash-only mode: records update the running digest (and the record count)
  // but are not stored, so a million-job run's trace costs O(1) memory.
  // events()/ForJob()/WriteCsv() then see only the records stored while
  // storage was on. The digest itself is identical in both modes.
  void set_hash_only(bool hash_only) { hash_only_ = hash_only; }
  bool hash_only() const { return hash_only_; }

  // Running FNV-1a digest over the canonical fields of every record so far
  // (time bits, type, job, ps, workers, detail kind and payload — for string
  // details, the string bytes). Maintained in both modes: two runs produced
  // identical traces iff their digests and sizes match, which lets
  // determinism sweeps compare traces without holding them.
  uint64_t digest() const { return digest_; }

  void Record(double time_s, SimEventType type, int job_id, int num_ps = 0,
              int num_workers = 0, std::string detail = "");
  // Hot-path variants: defer the detail-string construction to read time.
  // Materialized details are "epochs=<n>", "server=<n>" and
  // "factor=<std::to_string(factor)>" respectively — byte-identical to what
  // the equivalent Record(..., string) call would have produced.
  void RecordEpochs(double time_s, SimEventType type, int job_id, int num_ps,
                    int num_workers, int64_t epochs);
  void RecordServer(double time_s, SimEventType type, int job_id, int server_id);
  void RecordFactor(double time_s, SimEventType type, int job_id, double factor);

  const std::vector<SimEvent>& events() const;
  // Records ever recorded (counted in hash-only mode too).
  size_t size() const { return recorded_; }

  // Events of one job, in time order.
  std::vector<SimEvent> ForJob(int job_id) const;

  // Number of events per type.
  std::map<SimEventType, int64_t> CountByType() const;

  // CSV export: time_s,event,job,ps,workers,detail.
  void WriteCsv(std::ostream& os) const;

 private:
  enum class DetailKind : uint8_t { kNone, kString, kEpochs, kServer, kFactor };

  struct RawRecord {
    double time_s = 0.0;
    SimEventType type = SimEventType::kArrival;
    int job_id = 0;
    int num_ps = 0;
    int num_workers = 0;
    DetailKind detail_kind = DetailKind::kNone;
    // kString: index into strings_. kEpochs/kServer: the integer argument.
    int64_t int_arg = 0;
    double num_arg = 0.0;  // kFactor
  };

  RawRecord& Push(double time_s, SimEventType type, int job_id, int num_ps,
                  int num_workers);
  // Folds the record's canonical fields into the digest and counts it. For
  // kString details the bytes of `detail` are folded (never the pool index,
  // which is a storage artifact); `detail` is null for every other kind.
  void Seal(const RawRecord& r, const std::string* detail);
  // Converts raw records [materialized_, records_.size()) into SimEvents.
  void Materialize() const;

  std::vector<RawRecord> records_;
  std::vector<std::string> strings_;  // pooled free-form detail strings
  mutable std::vector<SimEvent> events_;
  mutable size_t materialized_ = 0;
  bool hash_only_ = false;
  uint64_t digest_ = 14695981039346656037ULL;  // FNV-1a offset basis
  size_t recorded_ = 0;
  // Time-order check state (records_ is empty in hash-only mode).
  double last_time_s_ = 0.0;
  SimEventType last_type_ = SimEventType::kArrival;
  int last_job_id_ = 0;
  // Scratch slot Push hands out in hash-only mode instead of growing records_.
  RawRecord scratch_;
};

}  // namespace optimus

#endif  // SRC_SIM_TRACE_H_
