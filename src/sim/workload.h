// Workload generation (§6.1).
//
// Jobs are drawn from the Table-1 model zoo with a random training mode and a
// random convergence threshold in [1%, 5%]. Three arrival processes are
// supported: the paper's default (uniform-random arrivals over a 12000 s
// window), a Poisson process (3 arrivals per 10-minute scheduling interval),
// and a Google-trace-like bursty process (background Poisson plus arrival
// spikes, mimicking the spiky 7-hour excerpt the paper replays).
//
// Long-training models are dataset-downscaled so one experiment finishes in
// hours instead of weeks, exactly as the paper does.

#ifndef SRC_SIM_WORKLOAD_H_
#define SRC_SIM_WORKLOAD_H_

#include <optional>
#include <vector>

#include "src/cluster/job.h"
#include "src/common/rng.h"

namespace optimus {

enum class ArrivalProcess {
  kUniformRandom,
  kPoisson,
  kGoogleTrace,
};

const char* ArrivalProcessName(ArrivalProcess process);

struct WorkloadConfig {
  int num_jobs = 9;
  ArrivalProcess arrivals = ArrivalProcess::kUniformRandom;
  // Uniform arrivals land in [0, arrival_window_s].
  double arrival_window_s = 12000.0;
  // Poisson / Google-trace rate, in arrivals per scheduling interval.
  double arrivals_per_interval = 3.0;
  double interval_s = 600.0;
  // Google-trace burstiness: a fraction of intervals are spikes carrying a
  // multiple of the base rate.
  double spike_interval_fraction = 0.15;
  double spike_multiplier = 5.0;
  // Force every job to one training mode (Fig 16); nullopt = random.
  std::optional<TrainingMode> forced_mode;
  // Convergence-threshold range (§6.1: 1%..5%).
  double delta_lo = 0.01;
  double delta_hi = 0.05;
  int patience = 3;
  // Container requests per worker / PS. 2.5 CPUs + 10 GB yields ~60 container
  // slots on the 13-server testbed, matching the 55-60 concurrently running
  // tasks of the paper's Fig 14 (Fig 4's microbenchmark uses larger 5-CPU
  // containers; the cluster experiment clearly oversubscribes CPU).
  Resources worker_demand{2.5, 10, 0, 0.15};
  Resources ps_demand{2.5, 10, 0, 0.15};
  int max_ps = 16;
  int max_workers = 16;
  // Dataset downscaling: cap steps-per-epoch at roughly this value so large
  // models finish in a simulated-hours experiment (0 disables downscaling).
  int64_t target_steps_per_epoch = 20;
};

// Generates `config.num_jobs` job specs with ids 0..n-1 sorted by arrival.
std::vector<JobSpec> GenerateWorkload(const WorkloadConfig& config, Rng* rng);

// Downscaling factor applied to a model under the config (1.0 = untouched).
double DatasetScaleFor(const ModelSpec& model, const WorkloadConfig& config,
                       TrainingMode mode);

}  // namespace optimus

#endif  // SRC_SIM_WORKLOAD_H_
