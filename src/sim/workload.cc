#include "src/sim/workload.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/models/model_zoo.h"

namespace optimus {

const char* ArrivalProcessName(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kUniformRandom:
      return "uniform-random";
    case ArrivalProcess::kPoisson:
      return "poisson";
    case ArrivalProcess::kGoogleTrace:
      return "google-trace";
  }
  return "unknown";
}

double DatasetScaleFor(const ModelSpec& model, const WorkloadConfig& config,
                       TrainingMode mode) {
  if (config.target_steps_per_epoch <= 0) {
    return 1.0;
  }
  const int batch = mode == TrainingMode::kSync ? model.default_sync_batch
                                                : model.default_async_minibatch;
  const double full_steps =
      static_cast<double>(model.dataset_examples) / static_cast<double>(batch);
  if (full_steps <= static_cast<double>(config.target_steps_per_epoch)) {
    return 1.0;
  }
  return static_cast<double>(config.target_steps_per_epoch) / full_steps;
}

namespace {

std::vector<double> GenerateArrivalTimes(const WorkloadConfig& config, Rng* rng) {
  std::vector<double> times;
  times.reserve(config.num_jobs);
  switch (config.arrivals) {
    case ArrivalProcess::kUniformRandom: {
      for (int i = 0; i < config.num_jobs; ++i) {
        times.push_back(rng->Uniform(0.0, config.arrival_window_s));
      }
      break;
    }
    case ArrivalProcess::kPoisson: {
      // Exponential inter-arrival gaps with the configured per-interval rate.
      const double rate_per_s = config.arrivals_per_interval / config.interval_s;
      double t = 0.0;
      for (int i = 0; i < config.num_jobs; ++i) {
        t += rng->Exponential(rate_per_s);
        times.push_back(t);
      }
      break;
    }
    case ArrivalProcess::kGoogleTrace: {
      // Bursty: walk intervals; spike intervals carry `spike_multiplier`
      // times the base rate, and the jobs inside an interval land uniformly.
      double interval_start = 0.0;
      while (static_cast<int>(times.size()) < config.num_jobs) {
        const bool spike = rng->Bernoulli(config.spike_interval_fraction);
        const double mean =
            config.arrivals_per_interval * (spike ? config.spike_multiplier : 0.4);
        const int64_t count = rng->Poisson(mean);
        for (int64_t i = 0; i < count && static_cast<int>(times.size()) < config.num_jobs;
             ++i) {
          times.push_back(interval_start + rng->Uniform(0.0, config.interval_s));
        }
        interval_start += config.interval_s;
      }
      break;
    }
  }
  std::sort(times.begin(), times.end());
  return times;
}

}  // namespace

std::vector<JobSpec> GenerateWorkload(const WorkloadConfig& config, Rng* rng) {
  OPTIMUS_CHECK(rng != nullptr);
  OPTIMUS_CHECK_GE(config.num_jobs, 1);
  const std::vector<ModelSpec>& zoo = GetModelZoo();

  const std::vector<double> arrivals = GenerateArrivalTimes(config, rng);
  std::vector<JobSpec> jobs;
  jobs.reserve(config.num_jobs);
  for (int i = 0; i < config.num_jobs; ++i) {
    JobSpec spec;
    spec.id = i;
    // First 9 jobs cycle through the whole zoo (the paper's testbed runs one
    // of each); later jobs are uniform random draws.
    if (i < static_cast<int>(zoo.size())) {
      spec.model = &zoo[static_cast<size_t>(i) % zoo.size()];
    } else {
      spec.model = &zoo[static_cast<size_t>(rng->UniformInt(0, zoo.size() - 1))];
    }
    spec.mode = config.forced_mode.has_value()
                    ? *config.forced_mode
                    : (rng->Bernoulli(0.5) ? TrainingMode::kSync : TrainingMode::kAsync);
    spec.convergence_delta = rng->Uniform(config.delta_lo, config.delta_hi);
    spec.patience = config.patience;
    spec.worker_demand = config.worker_demand;
    spec.ps_demand = config.ps_demand;
    spec.arrival_time_s = arrivals[i];
    spec.dataset_scale = DatasetScaleFor(*spec.model, config, spec.mode);
    spec.max_ps = config.max_ps;
    spec.max_workers = config.max_workers;
    jobs.push_back(spec);
  }
  return jobs;
}

}  // namespace optimus
