// Discrete-time cluster simulator.
//
// Mirrors the paper's evaluation methodology: schedulers make decisions at
// scheduling-interval boundaries (10 minutes by default); between boundaries
// every running job advances at its ground-truth training speed (Eqn 2 with
// placement, PS-load and straggler effects) and emits the observables a real
// framework would: per-step training losses and measured speeds. Optimus's
// online models are fitted from those observables only; an oracle mode
// bypasses fitting and injects controlled prediction errors (Fig 15).

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/threadpool.h"

#include "src/cluster/checkpoint.h"
#include "src/cluster/data_serving.h"
#include "src/cluster/job.h"
#include "src/cluster/server.h"
#include "src/cluster/shard_plan.h"
#include "src/cluster/straggler.h"
#include "src/common/rng.h"
#include "src/models/loss_curve.h"
#include "src/models/param_blocks.h"
#include "src/net/network_model.h"
#include "src/obs/exporters.h"
#include "src/obs/phase_profiler.h"
#include "src/perfmodel/convergence_model.h"
#include "src/perfmodel/curve_families.h"
#include "src/perfmodel/speed_model.h"
#include "src/pserver/block_assignment.h"
#include "src/sched/optimus_allocator.h"
#include "src/sched/placement.h"
#include "src/sched/scheduler.h"
#include "src/sched/scheduler_registry.h"
#include "src/sched/sharded_round.h"
#include "src/sched/what_if.h"
#include "src/sim/event_kernel.h"
#include "src/sim/fault_injector.h"
#include "src/sim/invariant_auditor.h"
#include "src/sim/metrics.h"
#include "src/sim/trace.h"

namespace optimus {

// Controlled prediction-error injection (Fig 15): estimates are multiplied by
// (1 +/- e * (1 - progress)); the sign is drawn once per job.
struct ErrorInjection {
  double convergence_error = 0.0;
  double speed_error = 0.0;
};

// Observability subsystem (src/obs): metrics registry, flight recorder, and
// per-interval series sampling. All of it is derived from simulated state in
// serial phases, never draws from any RNG stream, and never feeds back into
// decisions — enabling or disabling it leaves every simulation output
// bitwise unchanged.
struct ObservabilityConfig {
  // Master switch: when false no metrics are registered, no flight events
  // are recorded, and no per-interval sampling happens. (The phase profiler
  // still accumulates the wall_* fields of RunMetrics.)
  bool enabled = true;
  // Flight-recorder ring depth in events; 0 disables the recorder.
  int flight_recorder_depth = 256;
  // Snapshot every deterministic scalar metric once per interval into the
  // run report's time series. Off by default (O(metrics) memory/interval).
  bool per_interval_series = false;
};

// Run-loop engine. Both engines share the policy path (fault pipeline,
// scheduling rounds, auditing) and the determinism contract; they differ in
// how simulated time advances between rounds. kInterval polls every job once
// per interval; kEvents (src/sim/event_kernel.h) advances jobs lazily between
// their own analytically-computed events. The interval engine is the parity
// baseline; see docs/ALGORITHMS.md §16 for the documented tolerance.
enum class SimEngine {
  kInterval,
  kEvents,
};

const char* SimEngineName(SimEngine engine);
// Parses "interval" / "events"; returns false on anything else.
bool ParseSimEngine(const std::string& name, SimEngine* out);

struct SimulatorConfig {
  AllocatorPolicy allocator = AllocatorPolicy::kOptimus;
  SimEngine engine = SimEngine::kInterval;
  // SchedulerRegistry policy name constructing the allocator. Empty (the
  // default) derives the name from the `allocator` family, so configs that
  // only set the enum keep working; ApplySchedulerPolicy (experiment.h) sets
  // both. Must name a registered policy when nonempty.
  std::string policy;
  PlacementPolicy placement = PlacementPolicy::kOptimusPack;
  double interval_s = 600.0;
  CommConfig comm;
  // Network fidelity model (src/net): `flat` (the default) keeps the
  // CommConfig flat per-container bandwidth and is bitwise identical to the
  // pre-network-model simulator; `topology` and `contention` derive per-job
  // bandwidths from a NIC/rack-uplink fabric built over `rack_size`-wide
  // racks. Per-job bandwidths are refreshed serially at scheduling rounds
  // (and fault edges, on the event engine), so outputs stay bitwise
  // identical across thread counts and shard counts.
  NetworkConfig net;
  CheckpointConfig checkpoint;
  StragglerConfig straggler;
  // PAA (§5.3) vs MXNet-default parameter-block assignment.
  bool use_paa = true;
  // Speed-model initialization: number of (p, w) pre-run samples (§6.1 uses
  // 5) and the measurement noise of a short run.
  int pre_run_samples = 5;
  double speed_measure_noise_sd = 0.02;
  // Multiplicative runtime noise on each interval's true speed.
  double runtime_noise_sd = 0.03;
  // Convergence-model feeding: loss samples per interval.
  int conv_samples_per_interval = 20;
  // Event-engine convergence feeding: loss samples observed per completed
  // epoch. The interval engine's per-interval sample count is a polling-rate
  // artifact; the event engine observes at the natural epoch granularity
  // (sub-epoch losses are strongly correlated, so a couple per epoch keeps
  // the fit quality while decoupling feeding cost from the polling rate;
  // fit cost per refresh is linear in the accumulated sample count).
  int conv_samples_per_epoch = 2;
  // Convergence-fit fidelity: cap on the points handed to the NNLS solver
  // after downsampling (0 = the model's default, 512). Higher values fit the
  // full loss history — affordable with the Gram-cached refits, linearly
  // costly on the from-scratch path.
  int conv_fit_points = 0;
  // Marginal-gain damping for young jobs (§4.1; 1.0 = off, 0.95 = paper's
  // suggested factor) applied while progress < young_job_progress_cutoff.
  double young_job_priority_factor = 1.0;
  double young_job_progress_cutoff = 0.15;
  // Prior for remaining epochs before the convergence model has a fit.
  double default_remaining_epochs = 30.0;
  // Use SLAQ-style multi-family curve fitting (inverse-poly / exponential /
  // power-law model selection, §7 extension) instead of the single Eqn-1
  // family for convergence estimation.
  bool multi_family_fitting = false;
  // Ablation: replace the fitted Eqn-3/4 speed model with the naive
  // assumption of linear speedup in workers (f(p, w) = w * f(1, 1)). Shows
  // how much of Optimus's gain comes from the performance model itself.
  bool naive_linear_speed = false;
  // Oracle mode (used by sensitivity/scalability studies): ground-truth
  // estimates with `error` injected instead of online fitting.
  bool oracle_estimates = false;
  ErrorInjection error;
  // Worker threads for the per-job phases of an interval: arrival-time
  // speed-model pre-run sampling, scheduler-input construction, and interval
  // advancement all fan out over jobs. Each job owns its RNG streams and all
  // cross-job effects (trace events, aggregate stats) are buffered per job
  // and merged in job order, so results are bitwise identical for any thread
  // count. 0 defers to the OPTIMUS_THREADS environment variable (1 = serial).
  int threads = 1;
  // Data serving (§5.1): seconds to hand one 128 MB chunk to a new owner
  // when elastic scaling rebalances the per-worker data assignment. The
  // resulting stall is tiny next to the checkpoint cost, as in the paper.
  double chunk_move_s = 0.2;
  // Mixed-workload headroom (§7 "Various workloads"): a fraction of every
  // server is reserved for a non-DL background workload. With a period, the
  // reservation oscillates sinusoidally between 0 and background_share, and
  // Optimus schedules DL jobs on the varying remainder.
  double background_share = 0.0;
  double background_period_s = 0.0;
  double max_sim_time_s = 3e6;
  uint64_t seed = 1;
  bool record_timeline = true;
  // Fault injection (server crashes, task failures, slowdown bursts); see
  // src/sim/fault_injector.h and docs/FAULTS.md. Default: no faults.
  FaultConfig fault;
  // Invariant auditing: re-derive and check cluster invariants every
  // interval (src/sim/invariant_auditor.h). On by default; violations are
  // counted in RunMetrics and reported at the end of Run(). With
  // audit_fatal, any violation aborts the run loudly instead.
  bool audit = true;
  bool audit_fatal = false;
  // Incremental auditing: per-server load is maintained by deltas at
  // placement/eviction/completion time and checked in O(changed); every
  // full_audit_period-th check re-derives everything from first principles
  // and cross-checks the incremental tracker against it. Both paths enforce
  // the same invariants; incremental_audit = false re-derives every interval
  // (the pre-optimization behavior).
  bool incremental_audit = true;
  int full_audit_period = 16;
  // Model-fitting caches (Gram-cached NNLS refits, dirty-flag fit skipping,
  // memoized epoch walks). The cached paths are bit-identical to the
  // from-scratch ones; false forces the from-scratch paths (baseline mode
  // for benchmarks).
  bool model_caching = true;
  // Observability: metrics registry, flight recorder, series sampling.
  ObservabilityConfig obs;
  // Sparse placement iteration: jobs carry the sorted list of servers they
  // occupy (JobPlacement::used_servers), so speed evaluation, eviction scans
  // and audit updates walk O(tasks) entries instead of the dense O(servers)
  // vectors. Outputs are bit-identical either way; false restores the dense
  // scans (baseline mode for benchmarks).
  bool sparse_placement = true;
  // Two-phase sharded scheduling rounds (docs/ALGORITHMS.md §18): servers are
  // partitioned into `shards` rack-aligned contiguous pools. Allocation first
  // runs locally per shard — in parallel on the job thread pool, each shard
  // against its proportional capacity slice — to warm the speed-surface memo
  // tables; a serial cross-shard fixup pass then allocates over the full
  // cluster on the warmed tables, migrating grants across shard boundaries
  // until no cross-shard marginal gain remains. Placement (kOptimusPack only)
  // keeps one lazy server heap per shard and merges them with a tournament
  // pop that reproduces the global most-free order. Decisions, RunMetrics,
  // event traces, and the deterministic metric catalog are bitwise identical
  // for every (shards, threads) combination; 1 = the unsharded round.
  int shards = 1;
  // Rack width in contiguous server ids (the scenario DSL's
  // `cluster.rack_size`) used to align shard boundaries; 0 = one rack spans
  // the cluster, letting shard boundaries fall anywhere.
  int rack_size = 0;
  // Streaming job admission: arrival specs are held in a pending queue and
  // each Job record is materialized only when the simulation clock reaches
  // its arrival, then retired (heavy state freed, placement buffers recycled
  // through the spare pool, a compact RetiredJob record kept for the final
  // aggregation) once it completes — peak memory tracks the ACTIVE job set
  // instead of the full trace length. Requires the spec list to be sorted by
  // arrival time (workload generators emit time-ordered traces); outputs are
  // bitwise identical to the batch-materialized run.
  bool streaming = false;
  // Hash-only event trace: records update the trace's running FNV digest and
  // count but are not stored, so the trace costs O(1) memory at million-job
  // scale. The digest is maintained (identically) in both modes, so sweeps
  // can compare traces across configurations either way.
  bool trace_hash_only = false;

  // Field-by-field validation. Appends one "field: problem" message per
  // violated constraint to `errors` (when non-null) and returns whether the
  // config is valid. The Simulator constructor enforces this, so callers that
  // hand-assemble configs get field-specific diagnostics instead of a crash
  // deep inside the run; scenario loading (src/workload/scenario.h) and the
  // CLI reuse the same path.
  bool Validate(std::vector<std::string>* errors) const;

  // Fatal (with the joined field errors) when invalid; returns *this so call
  // sites can validate in an initializer expression.
  const SimulatorConfig& CheckValid() const;
};

class Simulator {
 public:
  Simulator(SimulatorConfig config, std::vector<Server> servers,
            std::vector<JobSpec> specs);

  // Runs to completion (or the time cap) and returns the metrics.
  RunMetrics Run();

  // Single-interval stepping (exposed for tests). Returns false once all
  // jobs have completed.
  bool StepInterval();

  // --- Re-entrant stepping / online mutation API (docs/ALGORITHMS.md §17) --
  // The online service mode (src/service) drives the simulator as a
  // long-lived object: time advances in caller-chosen increments and jobs
  // are registered and cancelled between advances. The contract is the
  // repo-wide one: for a fixed call sequence every output is bitwise
  // identical for any thread count, and a session whose submissions all land
  // before their jobs' arrival times is bitwise identical to a batch run
  // constructed with the full spec list up front.

  // Advances simulated time through `t` on either engine: the interval
  // engine steps whole intervals while now_s() < t; the event engine drains
  // every event with time <= t. Stops early once nothing can happen (all
  // jobs completed and none pending) or the time cap is reached. Safe to
  // call repeatedly; Run() may still be used afterwards to finish the run
  // and aggregate RunMetrics.
  void AdvanceTo(double t);

  // Registers a job while the simulator is live. The spec's arrival time
  // must be at or after now_s() (the past has already been simulated) and
  // its id must be unused. On success the job behaves exactly as if it had
  // been part of the constructor's spec list. Returns false (with a
  // diagnostic in *error, when non-null) on a duplicate id, a null model, or
  // an arrival in the past.
  bool SubmitJob(const JobSpec& spec, std::string* error = nullptr);

  // Cancels a job: releases its allocation, marks it completed at now_s()
  // without convergence, and records a kKilled trace event. Killed jobs
  // count as completed in the accounting invariants (the auditor's census
  // checks completed states against the completion metric) but are excluded
  // from the JCT histogram — they did not converge. Returns false when the
  // id is unknown or the job already completed.
  bool KillJob(int job_id, std::string* error = nullptr);

  // What-if admission query (§ "what-if analysis"): evaluates admitting
  // `candidate` against the jobs and capacity the *next* scheduling round
  // would see, using a fresh allocator instance so the query perturbs no
  // simulator state — counters, RNG streams, and model fits are untouched,
  // which keeps a session with interleaved queries bitwise identical to one
  // without them. The candidate's speed estimate is the analytic
  // ground-truth model (the oracle path) and its remaining epochs the
  // scheduler's prior for unfitted jobs.
  WhatIfResult WhatIf(const JobSpec& candidate);

  double now_s() const { return now_s_; }
  const Job& job(int id) const;
  // Metrics accumulated so far (Run() returns the final aggregate; this view
  // lets interval-stepping callers read counters without running to the end).
  const RunMetrics& metrics() const { return metrics_; }
  // Lifecycle event log of the run so far.
  const EventTrace& trace() const { return trace_; }
  // Two-phase sharded-round counters (all zero when knobs.shards <= 1).
  const ShardedRoundStats& sharded_stats() const { return sharded_stats_; }
  // Network fabric model driving per-job bandwidths; null under the flat
  // (exact-compat) model. Stats are cumulative over the run's solves.
  const NetworkModel* network() const { return net_.get(); }
  // Jobs materialized so far: the full workload in batch mode, only the
  // admitted prefix under streaming admission (retired slots still count).
  int materialized_jobs() const { return static_cast<int>(jobs_.size()); }
  // Invariant-audit results of the run so far (empty when audit is off).
  const InvariantAuditor& auditor() const { return auditor_; }
  // Observability views. The registry holds the named metric catalog (empty
  // when config.obs.enabled is false); the flight recorder holds the recent
  // structured-event tail (disabled at depth 0); the series holds the
  // per-interval snapshots (empty unless config.obs.per_interval_series).
  const MetricsRegistry& registry() const { return registry_; }
  const FlightRecorder& flight_recorder() const { return flight_; }
  const MetricsSeries& series() const { return series_; }
  // Whether `server_index` (index into the constructor's server list) is up.
  bool server_available(size_t server_index) const {
    return servers_[server_index].available();
  }

 private:
  struct JobRuntime {
    explicit JobRuntime(JobSpec spec)
        : job(spec),
          curve(spec.lr_drop.has_value()
                    ? LossCurve(spec.model->loss, spec.StepsPerEpoch(), *spec.lr_drop)
                    : LossCurve(spec.model->loss, spec.StepsPerEpoch())) {}

    Job job;
    LossCurve curve;
    std::unique_ptr<ConvergenceModel> conv;
    std::unique_ptr<MultiFamilyConvergenceModel> multi_conv;
    std::unique_ptr<SpeedModel> speed;
    std::unique_ptr<DataServing> data;
    ParamBlockSizes blocks;
    PsLoadMetrics load;
    bool load_valid = false;
    Rng rng{0};
    // Dedicated stream for fault draws so enabling faults does not perturb
    // the training/noise streams of an un-faulted run.
    Rng fault_rng{0};
    int error_sign = 1;
    // Per-container bandwidth (bytes/s) the network model resolved for this
    // job at the last RefreshNetwork; 0 = use the flat CommConfig bandwidth.
    double net_bw_bps = 0.0;
    bool arrived = false;
    bool killed = false;  // cancelled via KillJob; excluded from JCT stats
    bool lr_drop_handled = false;   // convergence model restarted at the drop
    int frozen_scalings = 0;  // set once the checkpoint budget is exhausted
    double true_total_epochs = 0.0;  // ground-truth convergence epoch count
    double last_worker_util = 0.0;
    double last_ps_util = 0.0;
    // Fault-tolerance state: relaunch backoff after repeated evictions.
    int consecutive_evictions = 0;
    double backoff_until_s = -1.0;
    double last_checkpoint_time_s = 0.0;

    // --- Event-engine segment state (simulator_events.cc) ------------------
    // While seg_active, the job trains at seg_speed steps/s from seg_anchor_s
    // onward (any stall_remaining_s is served first); seg_next_epoch is the
    // next unobserved epoch boundary. Bumping gen invalidates every pending
    // heap event for the job (lazy invalidation, see event_kernel.h).
    uint64_t gen = 0;
    bool seg_active = false;
    double seg_anchor_s = 0.0;
    double seg_speed = 0.0;        // post-noise, post-slowdown steps/s
    double seg_noise = 1.0;        // the round's noise draw, kept so a
                                   // mid-round slowdown edge can recompute
                                   // seg_speed without a fresh draw
    int64_t seg_next_epoch = 0;
    // Speed-model measurement snapshotted at segment rebuild and fed at the
    // next round's model refresh (the (p, w) the measured span ran at).
    int seg_sample_ps = 0;
    int seg_sample_workers = 0;
    double seg_sample_speed = 0.0;
    bool ran_since_round = false;  // trained since the last model refresh
  };

  // Buffered side effects of advancing one job through one interval; the
  // mutations of shared state they describe (trace events, running stats,
  // counters, auditor updates) are applied serially, in job order, after the
  // parallel per-job phase — the source of thread-count-independent output.
  struct AdvanceOutcome {
    bool ran = false;        // job trained this interval
    bool completed = false;  // converged at an epoch boundary
    int64_t completed_epoch = 0;
    bool lr_drop = false;  // learning-rate drop crossed this interval
    // Allocation at event-record time (completion / lr-drop).
    int event_ps = 0;
    int event_workers = 0;
    double worker_util = 0.0;
    double ps_util = 0.0;
    int tasks = 0;
  };

  // Buffered side effects of one job's epoch-boundary event (event engine);
  // merged serially in event order, like AdvanceOutcome for intervals.
  struct EpochOutcome {
    bool completed = false;
    int64_t completed_epoch = 0;
    bool lr_drop = false;
    int event_ps = 0;
    int event_workers = 0;
    bool push_next = false;  // job keeps training: next epoch event to enqueue
    double next_time_s = 0.0;
  };

  // --- Event-engine run loop (simulator_events.cc) --------------------------
  // Drains the event queue until every job completed or the time cap; the
  // shared aggregation tail in Run() finishes the metrics either way.
  void RunEvents();
  // Re-entrant core of RunEvents: seeds the queue once (events_seeded_),
  // then processes every event with time <= horizon (still subject to the
  // max_sim_time_s cap). RunEvents() is StepEventsUntil(+inf).
  void StepEventsUntil(double horizon);
  // Seeds the queue: one kArrival per job at its spec arrival time, one
  // kFaultPlan per distinct scripted fault-plan edge, the first kRound.
  void EnqueueStaticEvents();
  // Advances a segment-active job's training to `t` (no epoch boundary in
  // (anchor, t): boundaries get their own events). Serves stall first.
  void SettleJob(JobRuntime* jr, double t);
  // Parallel per-job part of an epoch event: settle to the boundary, record
  // the epoch loss, feed conv samples, detect convergence / lr-drop.
  void HandleEpochEvent(JobRuntime* jr, double t, EpochOutcome* out);
  // Same-timestamp epoch batch: fan out HandleEpochEvent over the pool,
  // merge outcomes serially in event (job id) order.
  void ProcessEpochBatch(const std::vector<SimKernelEvent>& batch);
  // A scripted fault-plan edge between rounds: apply server/slowdown
  // transitions at their exact time and re-anchor affected segments.
  void HandleFaultPlanEvent(double t);
  // The periodic Algorithm-1 round: settle everyone, refresh models, run the
  // shared fault pipeline + scheduling + audit, rebuild segments, sample.
  void HandleRoundEvent(double t);
  // Per-dirty-job model refresh at a round (speed sample + lazy fits).
  void RefreshModels();
  // Draws the round's speed noise, recomputes each running job's segment,
  // and enqueues its next epoch event.
  void RebuildSegments();

  void ActivateArrivals();
  // Constructor-identical per-job initialization (RNG streams split from the
  // run seed by job id, param blocks, data serving, ground-truth epoch
  // count); appends the runtime to jobs_. Shared by the constructor,
  // SubmitJob, and streaming materialization, so a job is bitwise the same
  // object no matter which path created it.
  void MaterializeSpec(const JobSpec& spec);
  // Streaming admission: materializes every pending spec whose arrival time
  // is <= t, in queue (spec) order. No-op when the queue head is later.
  void MaterializeArrivals(double t);
  size_t pending_remaining() const {
    return pending_specs_.size() - pending_next_;
  }
  // Retires the completed runtime in jobs_[idx]: folds the state the final
  // aggregation and the metrics walks need into the retired records, hands
  // the auditor its NoteRetired, recycles placement buffers through the
  // spare pool, and frees the runtime (jobs_[idx] becomes null; every loop
  // over jobs_ skips null slots).
  void RetireJob(size_t idx);
  // Retires every completed, not-yet-retired runtime. No-op unless
  // config_.streaming. The interval engine sweeps at the end of each step;
  // the event engine sweeps at rounds after RefreshModels, so a completed
  // job's final trained span still feeds its models exactly as in the batch
  // run before the runtime is freed.
  void RetireCompleted();
  // Scheduler view of a job (estimates only).
  SchedJob MakeSchedJob(JobRuntime* jr) const;
  // Scheduler inputs of a round at the current instant: partitions active
  // jobs into schedulable and frozen (checkpoint budget spent) and derives
  // the slot-quantized capacity after the background reservation and the
  // frozen jobs' holdings. Shared by ScheduleActiveJobs and WhatIf so
  // admission queries see exactly what the next round would see.
  void CollectRoundInputs(std::vector<JobRuntime*>* schedulable,
                          std::vector<JobRuntime*>* frozen, Resources* capacity);
  double EstimateRemainingEpochs(const JobRuntime& jr) const;
  double ErrorFactor(const JobRuntime& jr, double error_magnitude) const;
  // Ground-truth job speed at the *current* allocation/placement (steps/s).
  double TrueSpeed(const JobRuntime& jr) const;
  void ScheduleActiveJobs();
  void AdvanceInterval();
  // Per-job interval step: trains the job, feeds its models, and records the
  // shared-state effects into `out`. Touches only jr-owned state, so calls
  // for distinct jobs are safe to run concurrently.
  void AdvanceJob(JobRuntime* jr, AdvanceOutcome* out);
  // Fault pipeline, run before each scheduling round: periodic checkpoints,
  // scripted server crashes/recoveries (evicting affected jobs), task
  // failures, and the cluster-wide slowdown factor for this interval.
  void ApplyFaults();
  // Evicts a job whose tasks died with a server: rolls progress back to the
  // last checkpoint, charges the restore stall, releases the allocation, and
  // applies the relaunch backoff policy.
  void EvictJob(JobRuntime* jr, const std::string& reason);
  // Reclaims a job's dense placement vectors into the spare pool when the job
  // leaves the cluster (completion, eviction, pause). Paired with the donor
  // path in ScheduleActiveJobs, steady-state rounds then recirculate a small
  // working set of server-sized buffers instead of allocating (and
  // page-faulting) fresh ones per first placement. No-op if the buffers were
  // already moved out or never sized.
  void HarvestPlacement(Job* job);
  void RunAudit();
  // Re-solves the network model over the current placements and refreshes
  // each running job's net_bw_bps. Serial (runs after scheduling and after
  // fault-edge evictions); no-op under the flat model. Returns true when any
  // job's bandwidth changed.
  bool RefreshNetwork();
  // Fraction of every server reserved for the background workload at time t.
  double BackgroundShare(double t) const;
  void RecomputeLoad(JobRuntime* jr);
  void InitSpeedModel(JobRuntime* jr);
  // Registers the metric catalog and profiler phases (constructor tail).
  void SetupObservability();
  // End-of-interval registry refresh: mirrors the cumulative totals (the
  // RunMetrics fields, the per-job model-fit stats walked in job order, the
  // speed-surface and allocator counters) into the named metrics, and samples
  // the per-interval series. Serial; runs after the interval's phases.
  void SampleObservability();

  SimulatorConfig config_;
  std::vector<Server> servers_;
  // Spare dense placement buffers (see HarvestPlacement); order is
  // deterministic because harvest and donation both happen in serial,
  // job-ordered code, and buffer identity never affects decisions.
  std::vector<JobPlacement> placement_spares_;
  // Scratch copy of servers_ for each scheduling round's placement pass;
  // element-wise refreshed so its heap allocation is made once.
  std::vector<Server> servers_scratch_;
  // PlaceableCapacity(servers_, demand) memo: servers_ only changes
  // placement-relevant state (availability) on fault edges, which invalidate
  // the memo; a different reference demand recomputes it.
  Resources placeable_cap_cache_;
  Resources placeable_cap_demand_;
  bool placeable_cap_valid_ = false;
  std::vector<std::unique_ptr<JobRuntime>> jobs_;
  std::map<int, size_t> job_index_;  // job id -> index in jobs_

  // --- Streaming admission (config_.streaming) ------------------------------
  // Specs not yet materialized, in non-decreasing arrival order;
  // pending_next_ is the queue head (consumed slots release their heap
  // state). Empty unless streaming is on.
  std::vector<JobSpec> pending_specs_;
  size_t pending_next_ = 0;
  // Compact stand-in for a retired runtime: everything Run()'s final
  // aggregation reads from a completed job. retired_[i] pairs with jobs_[i]
  // (null once retired); sized lazily on first retirement.
  struct RetiredJob {
    bool valid = false;
    bool killed = false;
    double arrival_time_s = 0.0;
    double completion_time_s = 0.0;
    double jct_s = 0.0;
    double total_stall_s = 0.0;
  };
  std::vector<RetiredJob> retired_;
  int retired_count_ = 0;
  // Fit-stat totals of retired runtimes, folded into SampleObservability's
  // live-job walk so the exported counters match the batch run (integer
  // sums, so folding an aggregate preserves the totals bitwise).
  ModelFitStats retired_conv_stats_;
  ModelFitStats retired_speed_stats_;
  std::unique_ptr<ThreadPool> pool_;  // per-job parallelism (see threads)
  // Greedy-round counters the Optimus allocator accumulates across rounds;
  // declared before allocator_, which captures a pointer to it.
  OptimusAllocRoundStats alloc_stats_;
  std::unique_ptr<Allocator> allocator_;
  // Rack-aligned server partition for the two-phase sharded round
  // (config_.shards; a single-shard plan routes every call through the
  // unsharded code paths) and the round's profiling counters.
  ShardPlan shard_plan_;
  ShardedRoundStats sharded_stats_;
  // Network fabric model; null under the flat (exact-compat) model.
  std::unique_ptr<NetworkModel> net_;
  StragglerModel straggler_;
  std::unique_ptr<FaultInjector> faults_;
  InvariantAuditor auditor_;
  double cluster_slow_factor_ = 1.0;
  Rng rng_;
  double now_s_ = 0.0;
  int completed_ = 0;
  RunMetrics metrics_;
  EventTrace trace_;

  // --- Event engine ---------------------------------------------------------
  EventQueue events_;
  EventKindCounts event_counts_;  // processed (non-stale) events by kind
  int64_t events_stale_dropped_ = 0;
  // Re-entrancy state: the static events are enqueued exactly once, on the
  // first StepEventsUntil call. pending_rounds_ / last_round_s_ track the
  // kRound chain so SubmitJob can re-seed it with the batch-identical
  // boundary after a round observed "nothing left anywhere" and stopped
  // pushing successors.
  bool events_seeded_ = false;
  int pending_rounds_ = 0;
  double last_round_s_ = 0.0;

  // --- Observability -------------------------------------------------------
  MetricsRegistry registry_;  // empty when config_.obs.enabled is false
  FlightRecorder flight_;     // depth 0 (no-op) when observability is off
  MetricsSeries series_;      // sampled only with obs.per_interval_series
  PhaseProfiler profiler_;    // wall-clock phase accounting (always on)
  int phase_faults_ = 0;
  int phase_schedule_ = 0;
  int phase_advance_ = 0;
  int phase_audit_ = 0;
  int phase_events_ = 0;  // event-kernel dispatch/settle/rebuild (events engine)
  // Speed-surface totals harvested from each scheduling round's surface set.
  int64_t surface_probes_ = 0;
  int64_t surface_evals_ = 0;
  int64_t surface_count_ = 0;
  bool flight_dumped_ = false;  // post-mortem dump emitted once per run

  // Handles into registry_ (null when observability is off).
  struct ObsHandles {
    Counter* intervals = nullptr;
    Counter* jobs_submitted = nullptr;
    Counter* jobs_completed = nullptr;
    Counter* jobs_killed = nullptr;
    Counter* scalings = nullptr;
    Counter* straggler_replacements = nullptr;
    Counter* checkpoints = nullptr;
    Counter* evictions = nullptr;
    Counter* task_failures = nullptr;
    Counter* server_crashes = nullptr;
    Counter* server_recoveries = nullptr;
    Counter* backoff_deferrals = nullptr;
    Counter* rolled_back_steps = nullptr;
    Counter* audit_checks = nullptr;
    Counter* audit_violations = nullptr;
    Counter* speed_probes = nullptr;
    Counter* speed_evals = nullptr;
    Counter* speed_surfaces = nullptr;
    Counter* alloc_pops = nullptr;
    Counter* alloc_grants = nullptr;
    Counter* alloc_stale_drops = nullptr;
    Counter* alloc_unfittable_drops = nullptr;
    Counter* conv_fits = nullptr;
    Counter* conv_fit_cache_hits = nullptr;
    Counter* conv_nnls_iterations = nullptr;
    Counter* speedmodel_fits = nullptr;
    Counter* speedmodel_fit_cache_hits = nullptr;
    Counter* speedmodel_nnls_iterations = nullptr;
    Counter* events_processed = nullptr;
    Counter* events_by_kind[kNumSimEventKinds] = {};
    // Network fabric (src/net): all zero under the flat model.
    Counter* net_solves = nullptr;
    Counter* net_flows = nullptr;
    Counter* net_contended_flows = nullptr;
    Gauge* net_max_link_util = nullptr;
    Gauge* net_mean_link_util = nullptr;
    // Sharded-round profile (quarantined: registered with the wall_* tail).
    Counter* shard_rounds = nullptr;
    Counter* shard_local_grants = nullptr;
    Counter* shard_local_evals = nullptr;
    Counter* shard_warmed_points = nullptr;
    Counter* shard_migrated_jobs = nullptr;
    Counter* shard_migrated_tasks = nullptr;
    Gauge* sim_time = nullptr;
    Gauge* running_tasks = nullptr;
    Histogram* jct_seconds = nullptr;
    Histogram* completed_epochs = nullptr;
  };
  ObsHandles m_;
};

}  // namespace optimus

#endif  // SRC_SIM_SIMULATOR_H_
