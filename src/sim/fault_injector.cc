#include "src/sim/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "src/common/logging.h"

namespace optimus {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Splits on any of the given separator characters, dropping empty pieces.
std::vector<std::string> SplitAny(const std::string& text, const std::string& seps) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (seps.find(c) != std::string::npos) {
      if (!current.empty()) {
        out.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    out.push_back(current);
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) {
    return "";
  }
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool ParseDouble(const std::string& text, double* out) {
  std::istringstream is(text);
  is >> *out;
  return !is.fail() && is.eof();
}

// Parses "k1=v1,k2=v2" into pairs; returns false on a piece without '='.
bool ParseParams(const std::string& text,
                 std::vector<std::pair<std::string, std::string>>* params) {
  for (const std::string& piece : SplitAny(text, ",")) {
    const size_t eq = piece.find('=');
    if (eq == std::string::npos) {
      return false;
    }
    params->push_back({Trim(piece.substr(0, eq)), Trim(piece.substr(eq + 1))});
  }
  return true;
}

// Parses "S" or "A-B" into a server list.
bool ParseServerList(const std::string& text, std::vector<int>* servers) {
  const size_t dash = text.find('-');
  double lo = 0.0;
  double hi = 0.0;
  if (dash == std::string::npos) {
    if (!ParseDouble(text, &lo) || lo < 0.0) {
      return false;
    }
    hi = lo;
  } else if (!ParseDouble(text.substr(0, dash), &lo) ||
             !ParseDouble(text.substr(dash + 1), &hi) || lo < 0.0 || hi < lo) {
    return false;
  }
  for (int s = static_cast<int>(lo); s <= static_cast<int>(hi); ++s) {
    servers->push_back(s);
  }
  return true;
}

bool ParseEvent(const std::string& event, FaultPlan* plan, std::string* error) {
  const size_t at = event.find('@');
  if (at == std::string::npos) {
    *error = "event '" + event + "' is missing '@time'";
    return false;
  }
  const std::string kind = Trim(event.substr(0, at));
  std::string rest = event.substr(at + 1);
  std::string params_text;
  if (const size_t colon = rest.find(':'); colon != std::string::npos) {
    params_text = rest.substr(colon + 1);
    rest = rest.substr(0, colon);
  }
  double time_s = 0.0;
  if (!ParseDouble(Trim(rest), &time_s) || time_s < 0.0) {
    *error = "event '" + event + "' has a bad time";
    return false;
  }
  std::vector<std::pair<std::string, std::string>> params;
  if (!ParseParams(params_text, &params)) {
    *error = "event '" + event + "' has malformed params (expect k=v,...)";
    return false;
  }

  if (kind == "crash" || kind == "rack") {
    ServerOutage outage;
    outage.start_s = time_s;
    outage.recover_s = kInf;
    for (const auto& [k, v] : params) {
      if (k == "server" || k == "servers") {
        if (!ParseServerList(v, &outage.servers)) {
          *error = "event '" + event + "': bad server list '" + v + "'";
          return false;
        }
      } else if (k == "recover") {
        if (!ParseDouble(v, &outage.recover_s) || outage.recover_s <= time_s) {
          *error = "event '" + event + "': recover must be a time after the crash";
          return false;
        }
      } else {
        *error = "event '" + event + "': unknown param '" + k + "'";
        return false;
      }
    }
    if (outage.servers.empty()) {
      *error = "event '" + event + "' names no servers";
      return false;
    }
    plan->outages.push_back(std::move(outage));
    return true;
  }
  if (kind == "slow") {
    SlowdownBurst burst;
    burst.start_s = time_s;
    bool have_factor = false;
    bool have_duration = false;
    for (const auto& [k, v] : params) {
      if (k == "factor") {
        if (!ParseDouble(v, &burst.factor) || burst.factor <= 0.0 ||
            burst.factor > 1.0) {
          *error = "event '" + event + "': factor must be in (0, 1]";
          return false;
        }
        have_factor = true;
      } else if (k == "duration") {
        double d = 0.0;
        if (!ParseDouble(v, &d) || d <= 0.0) {
          *error = "event '" + event + "': duration must be positive";
          return false;
        }
        burst.end_s = time_s + d;
        have_duration = true;
      } else {
        *error = "event '" + event + "': unknown param '" + k + "'";
        return false;
      }
    }
    if (!have_factor || !have_duration) {
      *error = "event '" + event + "': slow needs factor=F and duration=D";
      return false;
    }
    plan->slowdowns.push_back(burst);
    return true;
  }
  *error = "unknown event kind '" + kind + "' (expected crash|rack|slow)";
  return false;
}

}  // namespace

bool ParseFaultPlan(const std::string& spec, FaultPlan* plan, std::string* error) {
  OPTIMUS_CHECK(plan != nullptr);
  OPTIMUS_CHECK(error != nullptr);
  error->clear();
  std::string text = Trim(spec);
  if (!text.empty() && text[0] == '@') {
    const std::string path = text.substr(1);
    std::ifstream in(path);
    if (!in.good()) {
      *error = "cannot read fault plan file '" + path + "'";
      return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  for (std::string line : SplitAny(text, "\n;")) {
    if (const size_t hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = Trim(line);
    if (line.empty()) {
      continue;
    }
    if (!ParseEvent(line, plan, error)) {
      return false;
    }
  }
  return true;
}

FaultInjector::FaultInjector(const FaultConfig& config, int num_servers)
    : config_(config), down_count_(static_cast<size_t>(num_servers), 0) {
  for (const ServerOutage& outage : config_.plan.outages) {
    for (int s : outage.servers) {
      if (s < 0 || s >= num_servers) {
        continue;  // plan written for a larger cluster; skip
      }
      transitions_.push_back({outage.start_s, s, +1});
      if (std::isfinite(outage.recover_s)) {
        transitions_.push_back({outage.recover_s, s, -1});
      }
    }
  }
  std::stable_sort(transitions_.begin(), transitions_.end(),
                   [](const Transition& a, const Transition& b) {
                     if (a.time_s != b.time_s) {
                       return a.time_s < b.time_s;
                     }
                     if (a.server != b.server) {
                       return a.server < b.server;
                     }
                     return a.delta < b.delta;  // recoveries before crashes
                   });
}

FaultInjector::IntervalFaults FaultInjector::Advance(double now_s) {
  IntervalFaults out;
  // Snapshot up/down before applying this span's transitions, then report
  // only the net change per server — a server that flaps within one skipped
  // span produces no visible transition.
  std::vector<int> touched;
  std::vector<char> was_down(down_count_.size(), 0);
  for (size_t s = 0; s < down_count_.size(); ++s) {
    was_down[s] = down_count_[s] > 0 ? 1 : 0;
  }
  while (cursor_ < transitions_.size() && transitions_[cursor_].time_s <= now_s) {
    const Transition& t = transitions_[cursor_++];
    down_count_[t.server] += t.delta;
    OPTIMUS_CHECK_GE(down_count_[t.server], 0);
    touched.push_back(t.server);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (int s : touched) {
    const bool down = down_count_[s] > 0;
    if (down && !was_down[s]) {
      out.crashed.push_back(s);
    } else if (!down && was_down[s]) {
      out.recovered.push_back(s);
    }
  }

  for (const SlowdownBurst& burst : config_.plan.slowdowns) {
    if (burst.start_s <= now_s && now_s < burst.end_s) {
      out.slow_factor *= burst.factor;
    }
  }
  return out;
}

bool FaultInjector::server_up(int server) const {
  if (server < 0 || server >= static_cast<int>(down_count_.size())) {
    return false;
  }
  return down_count_[static_cast<size_t>(server)] == 0;
}

int FaultInjector::servers_down() const {
  int n = 0;
  for (int c : down_count_) {
    n += c > 0 ? 1 : 0;
  }
  return n;
}

double FaultInjector::JobFailureProbability(int num_tasks) const {
  if (config_.task_failure_prob <= 0.0 || num_tasks <= 0) {
    return 0.0;
  }
  const double p = std::clamp(config_.task_failure_prob, 0.0, 1.0);
  return 1.0 - std::pow(1.0 - p, static_cast<double>(num_tasks));
}

}  // namespace optimus
