// Discrete-event kernel for the cluster simulator.
//
// The interval engine (simulator.cc) polls every job once per scheduling
// interval whether or not anything about it changed; at cluster scale the
// poll — not the decisions — dominates wall time. The event kernel inverts
// control: simulated activity is a priority queue of typed events, each job
// is advanced lazily only between its *own* events, and epoch completions
// are computed analytically from the ground-truth speed instead of being
// discovered by stepping. Scheduling rounds stay periodic (Optimus's
// Algorithm-1 cadence, one kRound event per interval), so policy decisions
// keep their interval-engine semantics while idle jobs cost zero work
// between rounds.
//
// Determinism: the queue is ordered by the total key (time, kind, job_id) —
// no two distinct events compare equal — so pop order is independent of push
// order and of the heap's internals (src/common/min_heap.h). Same-timestamp
// batches are defined as runs of equal (time, kind) and fan out over the
// thread pool with index-owned outcome slots merged serially in key order,
// which keeps every simulation output bitwise identical for any --threads.
//
// Lazy invalidation: rescheduling a job's pending epoch event on every
// allocation / fault / noise-redraw change would need a decrease-key
// operation. Instead each job carries a generation counter; events snapshot
// the generation at push time and a popped event whose generation no longer
// matches the job's is stale and silently discarded — the same
// stale-snapshot idiom the allocator's lazy gain heap uses.

#ifndef SRC_SIM_EVENT_KERNEL_H_
#define SRC_SIM_EVENT_KERNEL_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/min_heap.h"

namespace optimus {

// Processing priority at equal timestamps is the enum order: arrivals first
// (a job arriving exactly at a round boundary is schedulable in that round,
// matching the interval engine's ActivateArrivals-before-scheduling order),
// then epoch completions (training that finishes exactly at a boundary
// belongs to the span before it), then scripted fault-plan edges, then the
// scheduling round that reacts to all of the above.
enum class SimEventKind : int {
  kArrival = 0,
  kEpoch = 1,
  kFaultPlan = 2,
  kRound = 3,
};

inline constexpr int kNumSimEventKinds = 4;

const char* SimEventKindName(SimEventKind kind);

struct SimKernelEvent {
  double time_s = 0.0;
  SimEventKind kind = SimEventKind::kRound;
  // Tie-break id; the owning job for kEpoch/kArrival, -1 for cluster-level
  // events (kFaultPlan, kRound).
  int64_t job_id = -1;
  // Owning job's generation at push time (kEpoch only); see header comment.
  uint64_t gen = 0;
};

// Strict total order on (time, kind, job_id). Two pushed events never
// compare equal: per-job kinds carry distinct job ids at one timestamp, and
// cluster-level kinds are pushed at most once per timestamp.
struct SimKernelEventBefore {
  bool operator()(const SimKernelEvent& a, const SimKernelEvent& b) const {
    if (a.time_s != b.time_s) {
      return a.time_s < b.time_s;
    }
    if (a.kind != b.kind) {
      return static_cast<int>(a.kind) < static_cast<int>(b.kind);
    }
    return a.job_id < b.job_id;
  }
};

// The simulator's event queue: a deterministic min-heap plus the batch pop
// and the push/processed accounting the observability layer exports.
class EventQueue {
 public:
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  void reserve(size_t n) { heap_.reserve(n); }

  void Push(const SimKernelEvent& event) {
    heap_.push(event);
    ++pushed_;
  }

  const SimKernelEvent& Top() const { return heap_.top(); }

  // Pops the full run of events sharing the top's (time, kind) into *batch
  // (cleared first), in ascending job_id — the serial-merge order for the
  // parallel fan-out. Cluster-level kinds yield singleton batches.
  void PopBatch(std::vector<SimKernelEvent>* batch);

  // Counters for metrics/flight-recorder export. `pushed` includes events
  // that later die as stale; the simulator counts processed events itself
  // (it is the only place that can tell stale from live).
  int64_t pushed() const { return pushed_; }

 private:
  MinHeap<SimKernelEvent, SimKernelEventBefore> heap_;
  int64_t pushed_ = 0;
};

// Per-kind processed-event tally, merged into metrics/observability by the
// simulator's event loop.
struct EventKindCounts {
  std::array<int64_t, kNumSimEventKinds> counts = {};

  void Note(SimEventKind kind) { ++counts[static_cast<size_t>(kind)]; }
  int64_t total() const {
    int64_t sum = 0;
    for (int64_t c : counts) {
      sum += c;
    }
    return sum;
  }
};

}  // namespace optimus

#endif  // SRC_SIM_EVENT_KERNEL_H_
