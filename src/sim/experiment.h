// Experiment harness: repeated simulation runs with aggregation (§6.1 runs
// every experiment 3 times and reports averages).

#ifndef SRC_SIM_EXPERIMENT_H_
#define SRC_SIM_EXPERIMENT_H_

#include <functional>
#include <string>
#include <vector>

#include "src/cluster/server.h"
#include "src/sim/simulator.h"
#include "src/sim/workload.h"

namespace optimus {

struct ExperimentResult {
  std::string label;
  double avg_jct_mean = 0.0;
  double avg_jct_stddev = 0.0;
  double makespan_mean = 0.0;
  double makespan_stddev = 0.0;
  double scaling_overhead_mean = 0.0;
  double completed_fraction = 1.0;
  // Fault-injection aggregates (per-run means; 0 without faults) and the
  // total invariant-audit violations across all repeats (must stay 0).
  double task_failures_mean = 0.0;
  double job_evictions_mean = 0.0;
  int64_t audit_violations_total = 0;
  std::vector<RunMetrics> runs;
};

struct ExperimentConfig {
  SimulatorConfig sim;
  WorkloadConfig workload;
  int repeats = 3;
  uint64_t base_seed = 42;
  std::string label;
  // Worker threads for the repeats (each repeat is an independent simulation
  // with its own seed). Every metric is bitwise identical for any thread
  // count; see src/common/threadpool.h for the determinism contract. The
  // default honors the OPTIMUS_THREADS environment variable (1 = serial).
  int threads = 0;  // 0 = DefaultThreadCount()
};

// Runs `repeats` simulations on the given cluster builder (called per run so
// servers start fresh; it must be safe to call from several threads when
// config.threads > 1) with seeds base_seed, base_seed+1, ... Results are
// aggregated in repeat order regardless of completion order.
ExperimentResult RunExperiment(const ExperimentConfig& config,
                               const std::function<std::vector<Server>()>& cluster);

// Convenience: normalizes a metric against a baseline result (baseline = 1.0).
double NormalizedTo(double value, double baseline);

// Applies a SchedulerRegistry policy onto `config`: sets the policy name,
// allocator family, placement scheme, PAA / straggler-handling toggles, and
// the young-job damping factor; leaves unrelated fields untouched. Returns
// false (and, when `error` is non-null, the canonical unknown-policy message
// naming the registered set) for an unregistered name.
bool ApplySchedulerPolicy(const std::string& policy, SimulatorConfig* config,
                          std::string* error = nullptr);

// Canonical scheduler configurations for the §6 comparisons: Optimus
// (marginal-gain allocation, packed placement, PAA, straggler handling,
// young-job damping) vs the DRF fairness scheduler (equal dominant shares,
// Kubernetes load-balancing placement, stock MXNet block assignment, no
// straggler handling) vs Tetris (SRTF + packing, fragmentation-minimizing
// placement, stock MXNet, no straggler handling). Thin enum wrapper over
// ApplySchedulerPolicy for the benches that predate the registry.
enum class SchedulerPreset {
  kOptimus,
  kDrf,
  kTetris,
};

const char* SchedulerPresetName(SchedulerPreset preset);

// Applies the preset onto `config` via the SchedulerRegistry entry of the
// same name (leaves unrelated fields untouched).
void ApplySchedulerPreset(SchedulerPreset preset, SimulatorConfig* config);

// The §6.1 testbed environment knobs shared by the comparison benches:
// straggler injection that Optimus handles and the baselines ride out.
void ApplyTestbedConditions(SimulatorConfig* config);

}  // namespace optimus

#endif  // SRC_SIM_EXPERIMENT_H_
