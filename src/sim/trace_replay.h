// Workload trace import/export.
//
// Serializes a generated workload to CSV and replays external traces (e.g.
// hand-edited or derived from production logs) into JobSpecs, so experiments
// can be pinned to exact job mixes instead of seeded generators. Column
// format (header required):
//
//   job_id,model,mode,arrival_s,delta,patience,dataset_scale,max_ps,max_workers
//
// Unknown models and malformed rows fail loudly — a silently skipped job
// would corrupt every downstream comparison.

#ifndef SRC_SIM_TRACE_REPLAY_H_
#define SRC_SIM_TRACE_REPLAY_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/cluster/job.h"

namespace optimus {

// Writes the workload as CSV (container demands are uniform per workload and
// not serialized; pass them again on load).
void WriteWorkloadCsv(const std::vector<JobSpec>& jobs, std::ostream& os);

struct TraceReplayOptions {
  Resources worker_demand{2.5, 10, 0, 0.15};
  Resources ps_demand{2.5, 10, 0, 0.15};
};

// Parses a workload CSV. Returns false (and leaves `jobs` empty) on any
// malformed row; `error` receives a description.
bool ReadWorkloadCsv(std::istream& is, const TraceReplayOptions& options,
                     std::vector<JobSpec>* jobs, std::string* error);

}  // namespace optimus

#endif  // SRC_SIM_TRACE_REPLAY_H_
