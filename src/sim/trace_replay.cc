#include "src/sim/trace_replay.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/common/logging.h"
#include "src/models/model_zoo.h"

namespace optimus {

namespace {

constexpr char kHeader[] =
    "job_id,model,mode,arrival_s,delta,patience,dataset_scale,max_ps,max_workers";

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, ',')) {
    out.push_back(field);
  }
  return out;
}

const ModelSpec* FindModelOrNull(const std::string& name) {
  for (const ModelSpec& spec : GetModelZoo()) {
    if (spec.name == name) {
      return &spec;
    }
  }
  return nullptr;
}

}  // namespace

void WriteWorkloadCsv(const std::vector<JobSpec>& jobs, std::ostream& os) {
  os.precision(17);  // exact double round-trip
  os << kHeader << "\n";
  for (const JobSpec& job : jobs) {
    OPTIMUS_CHECK(job.model != nullptr);
    os << job.id << "," << job.model->name << "," << TrainingModeName(job.mode) << ","
       << job.arrival_time_s << "," << job.convergence_delta << "," << job.patience
       << "," << job.dataset_scale << "," << job.max_ps << "," << job.max_workers
       << "\n";
  }
}

bool ReadWorkloadCsv(std::istream& is, const TraceReplayOptions& options,
                     std::vector<JobSpec>* jobs, std::string* error) {
  OPTIMUS_CHECK(jobs != nullptr);
  OPTIMUS_CHECK(error != nullptr);
  jobs->clear();
  error->clear();

  std::string line;
  if (!std::getline(is, line) || line.rfind("job_id,model,mode", 0) != 0) {
    *error = "missing or unrecognized header (expected '" + std::string(kHeader) + "')";
    return false;
  }

  int line_no = 1;
  std::vector<JobSpec> parsed;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    const std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != 9) {
      *error = "line " + std::to_string(line_no) + ": expected 9 fields, got " +
               std::to_string(fields.size());
      return false;
    }
    JobSpec spec;
    try {
      spec.id = std::stoi(fields[0]);
      spec.arrival_time_s = std::stod(fields[3]);
      spec.convergence_delta = std::stod(fields[4]);
      spec.patience = std::stoi(fields[5]);
      spec.dataset_scale = std::stod(fields[6]);
      spec.max_ps = std::stoi(fields[7]);
      spec.max_workers = std::stoi(fields[8]);
    } catch (const std::exception& e) {
      *error = "line " + std::to_string(line_no) + ": " + e.what();
      return false;
    }
    spec.model = FindModelOrNull(fields[1]);
    if (spec.model == nullptr) {
      *error = "line " + std::to_string(line_no) + ": unknown model '" + fields[1] + "'";
      return false;
    }
    if (fields[2] == "sync") {
      spec.mode = TrainingMode::kSync;
    } else if (fields[2] == "async") {
      spec.mode = TrainingMode::kAsync;
    } else {
      *error = "line " + std::to_string(line_no) + ": unknown mode '" + fields[2] + "'";
      return false;
    }
    if (spec.convergence_delta <= 0.0 || spec.patience < 1 || spec.dataset_scale <= 0.0 ||
        spec.max_ps < 1 || spec.max_workers < 1 || spec.arrival_time_s < 0.0) {
      *error = "line " + std::to_string(line_no) + ": out-of-range value";
      return false;
    }
    spec.worker_demand = options.worker_demand;
    spec.ps_demand = options.ps_demand;
    parsed.push_back(spec);
  }

  std::stable_sort(parsed.begin(), parsed.end(),
                   [](const JobSpec& a, const JobSpec& b) {
                     return a.arrival_time_s < b.arrival_time_s;
                   });
  *jobs = std::move(parsed);
  return true;
}

}  // namespace optimus
