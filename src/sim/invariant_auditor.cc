#include "src/sim/invariant_auditor.h"

#include <sstream>

#include "src/common/logging.h"

namespace optimus {

namespace {

// Slack for floating-point accumulation of placed demands.
constexpr double kEps = 1e-6;

}  // namespace

void InvariantAuditor::NoteRollback(int job_id) { rollback_ok_.insert(job_id); }

void InvariantAuditor::NoteRetired(int job_id) {
  last_steps_.erase(job_id);
  rollback_ok_.erase(job_id);
}

void InvariantAuditor::Report(double now_s, const char* invariant,
                              std::string detail) {
  if (flight_ != nullptr) {
    flight_->Record(now_s, FlightEventKind::kAuditViolation, -1, 0, 0, 0.0,
                    std::string(invariant) + ": " + detail);
  }
  violations_.push_back({now_s, invariant, std::move(detail)});
}

InvariantAuditor::Census InvariantAuditor::CheckJobScalars(
    double now_s, const std::vector<JobView>& jobs) {
  Census census;
  for (const JobView& job : jobs) {
    switch (job.state) {
      case JobState::kRunning:
        ++census.running;
        break;
      case JobState::kPaused:
        ++census.paused;
        break;
      case JobState::kPending:
        ++census.pending;
        break;
      case JobState::kCompleted:
        ++census.completed;
        break;
    }

    // State sanity: non-negative counts and progress; non-running jobs hold
    // no allocation; running jobs hold an active one.
    if (job.num_ps < 0 || job.num_workers < 0 || job.steps_done < 0.0) {
      std::ostringstream os;
      os << "job " << job.job_id << ": negative ps/workers/steps (" << job.num_ps
         << ", " << job.num_workers << ", " << job.steps_done << ")";
      Report(now_s, "state", os.str());
    }
    if (job.state == JobState::kRunning &&
        ((job.comm != CommMode::kAllReduce && job.num_ps <= 0) ||
         job.num_workers <= 0)) {
      std::ostringstream os;
      os << "job " << job.job_id << " is running with allocation (" << job.num_ps
         << ", " << job.num_workers << ")";
      Report(now_s, "state", os.str());
    }
    if ((job.state == JobState::kPaused || job.state == JobState::kPending) &&
        (job.num_ps != 0 || job.num_workers != 0)) {
      std::ostringstream os;
      os << "job " << job.job_id << " is " << JobStateName(job.state)
         << " but holds allocation (" << job.num_ps << ", " << job.num_workers
         << ")";
      Report(now_s, "state", os.str());
    }

    // Progress monotonicity (modulo announced rollbacks).
    if (const auto it = last_steps_.find(job.job_id); it != last_steps_.end()) {
      if (job.steps_done < it->second - kEps &&
          rollback_ok_.find(job.job_id) == rollback_ok_.end()) {
        std::ostringstream os;
        os << "job " << job.job_id << " progress went backwards without a "
           << "rollback: " << it->second << " -> " << job.steps_done << " steps";
        Report(now_s, "progress", os.str());
      }
    }
    last_steps_[job.job_id] = job.steps_done;
  }
  return census;
}

void InvariantAuditor::CheckAccounting(double now_s, const Census& census,
                                       const Counts& counts) {
  // Accounting identity over submitted jobs. Retired jobs (streaming
  // admission freed their runtime records after completion) are absent from
  // the views, so they enter both identities through the counts.
  if (census.running + census.paused + census.pending + census.completed +
          counts.retired !=
      counts.submitted) {
    std::ostringstream os;
    os << "job census " << census.running << "+" << census.paused << "+"
       << census.pending << "+" << census.completed << "+" << counts.retired
       << " retired != " << counts.submitted << " submitted";
    Report(now_s, "accounting", os.str());
  }
  if (census.completed + counts.retired != counts.completed_metric) {
    std::ostringstream os;
    os << "metrics report " << counts.completed_metric << " completed, census "
       << "says " << census.completed << " + " << counts.retired << " retired";
    Report(now_s, "accounting", os.str());
  }
}

void InvariantAuditor::Check(double now_s, const std::vector<Server>& servers,
                             const std::vector<JobView>& jobs,
                             const Counts& counts) {
  ++checks_run_;
  const size_t n_servers = servers.size();
  std::vector<Resources> placed_load(n_servers);
  std::vector<int> placed_tasks(n_servers, 0);

  const Census census = CheckJobScalars(now_s, jobs);
  for (const JobView& job : jobs) {
    // Accumulate per-server load from the placement of running jobs (only
    // running jobs hold cluster resources between intervals).
    if (job.state != JobState::kRunning || job.placement == nullptr ||
        job.placement->empty()) {
      continue;
    }
    const JobPlacement& placement = *job.placement;
    if (placement.compact()
            ? (placement.used_workers.size() != placement.used_servers.size() ||
               placement.used_ps.size() != placement.used_servers.size())
            : (placement.workers_per_server.size() != n_servers ||
               placement.ps_per_server.size() != n_servers)) {
      std::ostringstream os;
      os << "job " << job.job_id << " placement sized "
         << placement.workers_per_server.size() << "/"
         << placement.ps_per_server.size() << "/" << placement.used_servers.size()
         << " for " << n_servers << " servers";
      Report(now_s, "capacity", os.str());
      continue;
    }
    int placed_w = 0;
    int placed_p = 0;
    placement.ForEachUsed([&](size_t s, int w, int p) {
      if (s >= n_servers) {
        std::ostringstream os;
        os << "job " << job.job_id << " places tasks on server " << s
           << " outside the " << n_servers << "-server cluster";
        Report(now_s, "capacity", os.str());
        return;
      }
      if (w < 0 || p < 0) {
        std::ostringstream os;
        os << "job " << job.job_id << " has negative task count on server " << s;
        Report(now_s, "capacity", os.str());
        return;
      }
      placed_w += w;
      placed_p += p;
      placed_load[s] += job.worker_demand * w + job.ps_demand * p;
      placed_tasks[s] += w + p;
      if ((w > 0 || p > 0) && !servers[s].available()) {
        std::ostringstream os;
        os << "job " << job.job_id << " has " << w << " worker(s) and " << p
           << " ps on dead server " << servers[s].id();
        Report(now_s, "dead-server", os.str());
      }
    });
    if (placed_w != job.num_workers || placed_p != job.num_ps) {
      std::ostringstream os;
      os << "job " << job.job_id << " placement totals (" << placed_p << ", "
         << placed_w << ") != allocation (" << job.num_ps << ", "
         << job.num_workers << ")";
      Report(now_s, "capacity", os.str());
    }
  }

  // Capacity conservation: the sum of placed demands on each server must fit
  // within its physical capacity (equivalently, free stays non-negative).
  for (size_t s = 0; s < n_servers; ++s) {
    if (placed_tasks[s] == 0) {
      continue;
    }
    if (!servers[s].capacity().Fits(placed_load[s])) {
      std::ostringstream os;
      os << "server " << servers[s].id() << " overcommitted: placed "
         << placed_load[s].ToString() << " on capacity "
         << servers[s].capacity().ToString();
      Report(now_s, "capacity", os.str());
    }
  }

  CheckAccounting(now_s, census, counts);

  rollback_ok_.clear();
}

void InvariantAuditor::SetClusterSize(size_t n_servers) {
  server_load_.resize(n_servers);
}

void InvariantAuditor::SetPlacement(int job_id, const Resources& worker_demand,
                                    const Resources& ps_demand,
                                    const JobPlacement& placement) {
  ClearPlacement(job_id);
  if (placement.empty()) {
    return;
  }
  TrackedJob tracked;
  tracked.worker_demand = worker_demand;
  tracked.ps_demand = ps_demand;
  placement.ForEachUsed([&](size_t s, int w, int p) {
    tracked.tasks.push_back({static_cast<int>(s), w, p});
    tracked.num_workers += w;
    tracked.num_ps += p;
    OPTIMUS_CHECK_LT(s, server_load_.size())
        << "SetClusterSize was not called (or placement outgrew the cluster)";
    ServerLoad& load = server_load_[s];
    load.jobs[job_id] = {w, p};
    occupied_.insert(static_cast<int>(s));
    MarkDirty(static_cast<int>(s));
  });
  tracked_[job_id] = std::move(tracked);
}

void InvariantAuditor::ClearPlacement(int job_id) {
  const auto it = tracked_.find(job_id);
  if (it == tracked_.end()) {
    return;
  }
  for (const TrackedTask& task : it->second.tasks) {
    ServerLoad& load = server_load_[static_cast<size_t>(task.server)];
    load.jobs.erase(job_id);
    if (load.jobs.empty()) {
      occupied_.erase(task.server);
    }
    MarkDirty(task.server);
  }
  tracked_.erase(it);
}

Resources InvariantAuditor::DeriveServerLoad(size_t s) const {
  Resources load;
  for (const auto& [job_id, wp] : server_load_[s].jobs) {
    const auto it = tracked_.find(job_id);
    OPTIMUS_CHECK(it != tracked_.end());
    load += it->second.worker_demand * wp.first + it->second.ps_demand * wp.second;
  }
  return load;
}

void InvariantAuditor::CheckIncremental(double now_s,
                                        const std::vector<Server>& servers,
                                        const std::vector<JobView>& jobs,
                                        const Counts& counts) {
  ++checks_run_;
  const Census census = CheckJobScalars(now_s, jobs);

  // Per-job placement totals vs. allocation, via the tracker (O(1) per job).
  for (const JobView& job : jobs) {
    if (job.state != JobState::kRunning || job.placement == nullptr ||
        job.placement->empty()) {
      continue;
    }
    const auto it = tracked_.find(job.job_id);
    if (it == tracked_.end()) {
      std::ostringstream os;
      os << "running job " << job.job_id << " has a placement but no tracked "
         << "contribution";
      Report(now_s, "capacity", os.str());
      continue;
    }
    if (it->second.num_workers != job.num_workers ||
        it->second.num_ps != job.num_ps) {
      std::ostringstream os;
      os << "job " << job.job_id << " placement totals (" << it->second.num_ps
         << ", " << it->second.num_workers << ") != allocation (" << job.num_ps
         << ", " << job.num_workers << ")";
      Report(now_s, "capacity", os.str());
    }
  }

  // Dead-server: any occupied server must be available.
  for (const int s : occupied_) {
    if (servers[static_cast<size_t>(s)].available()) {
      continue;
    }
    for (const auto& [job_id, wp] : server_load_[static_cast<size_t>(s)].jobs) {
      std::ostringstream os;
      os << "job " << job_id << " has " << wp.first << " worker(s) and "
         << wp.second << " ps on dead server "
         << servers[static_cast<size_t>(s)].id();
      Report(now_s, "dead-server", os.str());
    }
  }

  // Capacity conservation on servers whose occupancy changed since the last
  // check — unchanged servers were already verified and cannot have regressed.
  for (const int s : dirty_servers_) {
    const size_t idx = static_cast<size_t>(s);
    if (server_load_[idx].jobs.empty()) {
      continue;
    }
    const Resources load = DeriveServerLoad(idx);
    if (!servers[idx].capacity().Fits(load)) {
      std::ostringstream os;
      os << "server " << servers[idx].id() << " overcommitted: placed "
         << load.ToString() << " on capacity " << servers[idx].capacity().ToString();
      Report(now_s, "capacity", os.str());
    }
  }
  dirty_servers_.clear();

  CheckAccounting(now_s, census, counts);

  rollback_ok_.clear();
}

void InvariantAuditor::CheckTrackerAgainstViews(double now_s,
                                                const std::vector<JobView>& jobs) {
  size_t tracked_seen = 0;
  for (const JobView& job : jobs) {
    const bool should_track = job.state == JobState::kRunning &&
                              job.placement != nullptr && !job.placement->empty();
    const auto it = tracked_.find(job.job_id);
    if (!should_track) {
      if (it != tracked_.end()) {
        std::ostringstream os;
        os << "tracker holds a placement for job " << job.job_id
           << " which is not running";
        Report(now_s, "audit-divergence", os.str());
        ++tracked_seen;
      }
      continue;
    }
    if (it == tracked_.end()) {
      std::ostringstream os;
      os << "tracker is missing running job " << job.job_id;
      Report(now_s, "audit-divergence", os.str());
      continue;
    }
    ++tracked_seen;
    const TrackedJob& tracked = it->second;
    // Re-derive the expected contribution from the view and compare.
    std::vector<TrackedTask> expected;
    job.placement->ForEachUsed([&](size_t s, int w, int p) {
      expected.push_back({static_cast<int>(s), w, p});
    });
    bool same = expected.size() == tracked.tasks.size() &&
                tracked.worker_demand == job.worker_demand &&
                tracked.ps_demand == job.ps_demand;
    for (size_t i = 0; same && i < expected.size(); ++i) {
      same = expected[i].server == tracked.tasks[i].server &&
             expected[i].workers == tracked.tasks[i].workers &&
             expected[i].ps == tracked.tasks[i].ps;
    }
    if (!same) {
      std::ostringstream os;
      os << "tracker diverges from the true placement of job " << job.job_id;
      Report(now_s, "audit-divergence", os.str());
    }
  }
  if (tracked_seen != tracked_.size()) {
    std::ostringstream os;
    os << "tracker holds " << tracked_.size() << " job(s), views cover "
       << tracked_seen;
    Report(now_s, "audit-divergence", os.str());
  }
}

std::string InvariantAuditor::Summary(size_t max_items) const {
  std::ostringstream os;
  os << violations_.size() << " violation(s)";
  const size_t n = std::min(max_items, violations_.size());
  for (size_t i = 0; i < n; ++i) {
    const AuditViolation& v = violations_[i];
    os << "; [t=" << v.time_s << " " << v.invariant << "] " << v.detail;
  }
  if (violations_.size() > n) {
    os << "; ...";
  }
  return os.str();
}

}  // namespace optimus
