#include "src/sim/invariant_auditor.h"

#include <sstream>

namespace optimus {

namespace {

// Slack for floating-point accumulation of placed demands.
constexpr double kEps = 1e-6;

}  // namespace

void InvariantAuditor::NoteRollback(int job_id) { rollback_ok_.insert(job_id); }

void InvariantAuditor::Report(double now_s, const char* invariant,
                              std::string detail) {
  violations_.push_back({now_s, invariant, std::move(detail)});
}

void InvariantAuditor::Check(double now_s, const std::vector<Server>& servers,
                             const std::vector<JobView>& jobs,
                             const Counts& counts) {
  ++checks_run_;
  const size_t n_servers = servers.size();
  std::vector<Resources> placed_load(n_servers);
  std::vector<int> placed_tasks(n_servers, 0);

  int running = 0;
  int paused = 0;
  int pending = 0;
  int completed = 0;
  for (const JobView& job : jobs) {
    switch (job.state) {
      case JobState::kRunning:
        ++running;
        break;
      case JobState::kPaused:
        ++paused;
        break;
      case JobState::kPending:
        ++pending;
        break;
      case JobState::kCompleted:
        ++completed;
        break;
    }

    // State sanity: non-negative counts and progress; non-running jobs hold
    // no allocation; running jobs hold an active one.
    if (job.num_ps < 0 || job.num_workers < 0 || job.steps_done < 0.0) {
      std::ostringstream os;
      os << "job " << job.job_id << ": negative ps/workers/steps (" << job.num_ps
         << ", " << job.num_workers << ", " << job.steps_done << ")";
      Report(now_s, "state", os.str());
    }
    if (job.state == JobState::kRunning &&
        (job.num_ps <= 0 || job.num_workers <= 0)) {
      std::ostringstream os;
      os << "job " << job.job_id << " is running with allocation (" << job.num_ps
         << ", " << job.num_workers << ")";
      Report(now_s, "state", os.str());
    }
    if ((job.state == JobState::kPaused || job.state == JobState::kPending) &&
        (job.num_ps != 0 || job.num_workers != 0)) {
      std::ostringstream os;
      os << "job " << job.job_id << " is " << JobStateName(job.state)
         << " but holds allocation (" << job.num_ps << ", " << job.num_workers
         << ")";
      Report(now_s, "state", os.str());
    }

    // Progress monotonicity (modulo announced rollbacks).
    if (const auto it = last_steps_.find(job.job_id); it != last_steps_.end()) {
      if (job.steps_done < it->second - kEps &&
          rollback_ok_.find(job.job_id) == rollback_ok_.end()) {
        std::ostringstream os;
        os << "job " << job.job_id << " progress went backwards without a "
           << "rollback: " << it->second << " -> " << job.steps_done << " steps";
        Report(now_s, "progress", os.str());
      }
    }
    last_steps_[job.job_id] = job.steps_done;

    // Accumulate per-server load from the placement of running jobs (only
    // running jobs hold cluster resources between intervals).
    if (job.state != JobState::kRunning || job.placement == nullptr ||
        job.placement->empty()) {
      continue;
    }
    const JobPlacement& placement = *job.placement;
    if (placement.workers_per_server.size() != n_servers ||
        placement.ps_per_server.size() != n_servers) {
      std::ostringstream os;
      os << "job " << job.job_id << " placement sized "
         << placement.workers_per_server.size() << "/"
         << placement.ps_per_server.size() << " for " << n_servers << " servers";
      Report(now_s, "capacity", os.str());
      continue;
    }
    int placed_w = 0;
    int placed_p = 0;
    for (size_t s = 0; s < n_servers; ++s) {
      const int w = placement.workers_per_server[s];
      const int p = placement.ps_per_server[s];
      if (w < 0 || p < 0) {
        std::ostringstream os;
        os << "job " << job.job_id << " has negative task count on server " << s;
        Report(now_s, "capacity", os.str());
        continue;
      }
      placed_w += w;
      placed_p += p;
      placed_load[s] += job.worker_demand * w + job.ps_demand * p;
      placed_tasks[s] += w + p;
      if ((w > 0 || p > 0) && !servers[s].available()) {
        std::ostringstream os;
        os << "job " << job.job_id << " has " << w << " worker(s) and " << p
           << " ps on dead server " << servers[s].id();
        Report(now_s, "dead-server", os.str());
      }
    }
    if (placed_w != job.num_workers || placed_p != job.num_ps) {
      std::ostringstream os;
      os << "job " << job.job_id << " placement totals (" << placed_p << ", "
         << placed_w << ") != allocation (" << job.num_ps << ", "
         << job.num_workers << ")";
      Report(now_s, "capacity", os.str());
    }
  }

  // Capacity conservation: the sum of placed demands on each server must fit
  // within its physical capacity (equivalently, free stays non-negative).
  for (size_t s = 0; s < n_servers; ++s) {
    if (placed_tasks[s] == 0) {
      continue;
    }
    if (!servers[s].capacity().Fits(placed_load[s])) {
      std::ostringstream os;
      os << "server " << servers[s].id() << " overcommitted: placed "
         << placed_load[s].ToString() << " on capacity "
         << servers[s].capacity().ToString();
      Report(now_s, "capacity", os.str());
    }
  }

  // Accounting identity over submitted jobs.
  if (running + paused + pending + completed != counts.submitted) {
    std::ostringstream os;
    os << "job census " << running << "+" << paused << "+" << pending << "+"
       << completed << " != " << counts.submitted << " submitted";
    Report(now_s, "accounting", os.str());
  }
  if (completed != counts.completed_metric) {
    std::ostringstream os;
    os << "metrics report " << counts.completed_metric << " completed, census "
       << "says " << completed;
    Report(now_s, "accounting", os.str());
  }

  rollback_ok_.clear();
}

std::string InvariantAuditor::Summary(size_t max_items) const {
  std::ostringstream os;
  os << violations_.size() << " violation(s)";
  const size_t n = std::min(max_items, violations_.size());
  for (size_t i = 0; i < n; ++i) {
    const AuditViolation& v = violations_[i];
    os << "; [t=" << v.time_s << " " << v.invariant << "] " << v.detail;
  }
  if (violations_.size() > n) {
    os << "; ...";
  }
  return os.str();
}

}  // namespace optimus
