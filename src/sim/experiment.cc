#include "src/sim/experiment.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/common/threadpool.h"

namespace optimus {

ExperimentResult RunExperiment(const ExperimentConfig& config,
                               const std::function<std::vector<Server>()>& cluster) {
  OPTIMUS_CHECK_GE(config.repeats, 1);
  ExperimentResult result;
  result.label = config.label;

  // Each repeat is fully independent: it derives everything from its own
  // seed, so the repeats can run on any number of threads. Results land in
  // index-owned slots and are aggregated in repeat order below, which keeps
  // every aggregate bitwise identical to the serial path.
  std::vector<RunMetrics> runs(config.repeats);
  const auto run_one = [&](int64_t r) {
    SimulatorConfig sim = config.sim;
    sim.seed = config.base_seed + static_cast<uint64_t>(r);
    Rng workload_rng(sim.seed ^ 0x5eedULL);
    std::vector<JobSpec> specs = GenerateWorkload(config.workload, &workload_rng);
    Simulator simulator(sim, cluster(), std::move(specs));
    runs[r] = simulator.Run();
  };
  const int threads = config.threads > 0 ? config.threads : DefaultThreadCount();
  ThreadPool pool(std::min(threads, config.repeats));
  pool.ParallelFor(config.repeats, run_one);

  std::vector<double> jcts;
  std::vector<double> makespans;
  std::vector<double> overheads;
  std::vector<double> task_failures;
  std::vector<double> evictions;
  double completed = 0.0;
  double total = 0.0;
  for (RunMetrics& metrics : runs) {
    jcts.push_back(metrics.avg_jct_s);
    makespans.push_back(metrics.makespan_s);
    overheads.push_back(metrics.scaling_overhead_fraction);
    task_failures.push_back(static_cast<double>(metrics.task_failures));
    evictions.push_back(static_cast<double>(metrics.job_evictions));
    result.audit_violations_total += metrics.audit_violations;
    completed += metrics.completed_jobs;
    total += metrics.total_jobs;
    result.runs.push_back(std::move(metrics));
  }
  result.avg_jct_mean = Mean(jcts);
  result.avg_jct_stddev = StdDev(jcts);
  result.makespan_mean = Mean(makespans);
  result.makespan_stddev = StdDev(makespans);
  result.scaling_overhead_mean = Mean(overheads);
  result.task_failures_mean = Mean(task_failures);
  result.job_evictions_mean = Mean(evictions);
  result.completed_fraction = total > 0.0 ? completed / total : 0.0;
  return result;
}

double NormalizedTo(double value, double baseline) {
  if (baseline <= 0.0) {
    return 0.0;
  }
  return value / baseline;
}

bool ApplySchedulerPolicy(const std::string& policy, SimulatorConfig* config,
                          std::string* error) {
  OPTIMUS_CHECK(config != nullptr);
  const SchedulerPolicyInfo* info = SchedulerRegistry::Global().Find(policy);
  if (info == nullptr) {
    if (error != nullptr) {
      *error = SchedulerRegistry::Global().UnknownPolicyMessage(policy);
    }
    return false;
  }
  // The ONE place a policy's traits land on a SimulatorConfig; nothing else
  // copies the toggles field by field.
  config->policy = info->name;
  config->allocator = info->allocator_family;
  config->placement = info->placement;
  config->use_paa = info->traits.use_paa;
  config->straggler.handling_enabled = info->traits.straggler_handling;
  config->young_job_priority_factor = info->traits.young_job_priority_factor;
  return true;
}

const char* SchedulerPresetName(SchedulerPreset preset) {
  switch (preset) {
    case SchedulerPreset::kOptimus:
      return "Optimus";
    case SchedulerPreset::kDrf:
      return "DRF";
    case SchedulerPreset::kTetris:
      return "Tetris";
  }
  return "unknown";
}

void ApplySchedulerPreset(SchedulerPreset preset, SimulatorConfig* config) {
  OPTIMUS_CHECK(config != nullptr);
  const char* name = "optimus";
  switch (preset) {
    case SchedulerPreset::kOptimus:
      name = "optimus";
      break;
    case SchedulerPreset::kDrf:
      name = "drf";
      break;
    case SchedulerPreset::kTetris:
      name = "tetris";
      break;
  }
  std::string error;
  OPTIMUS_CHECK(ApplySchedulerPolicy(name, config, &error)) << error;
}

void ApplyTestbedConditions(SimulatorConfig* config) {
  OPTIMUS_CHECK(config != nullptr);
  config->straggler.injection_prob_per_interval = 0.12;
}

}  // namespace optimus
