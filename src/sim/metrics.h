// Simulation outcome metrics (§6.1 "Metrics").
//
// Average job completion time (JCT) measures system performance; makespan
// (first arrival to last completion) measures resource efficiency. The
// timeline records the running-task count and normalized CPU utilization per
// scheduling interval (Fig 14), and scaling overhead tracks the share of time
// lost to checkpoint-based resource adjustments (§6.2).

#ifndef SRC_SIM_METRICS_H_
#define SRC_SIM_METRICS_H_

#include <cstdint>
#include <vector>

namespace optimus {

struct TimelinePoint {
  double time_s = 0.0;
  int running_tasks = 0;
  // Mean normalized CPU utilization across running tasks, in percent.
  double worker_cpu_util_pct = 0.0;
  double ps_cpu_util_pct = 0.0;
};

struct RunMetrics {
  int total_jobs = 0;
  int completed_jobs = 0;
  // Jobs cancelled by an online kill request (service mode). Kills count in
  // completed_jobs too — the accounting invariants check completed states
  // against that metric — but not in the JCT histogram (no convergence).
  int64_t jobs_killed = 0;
  std::vector<double> jcts;
  double avg_jct_s = 0.0;
  double makespan_s = 0.0;
  // Mean over jobs of (scaling stall time / JCT).
  double scaling_overhead_fraction = 0.0;
  int64_t straggler_replacements = 0;
  int64_t total_scalings = 0;
  // Fault-injection accounting (src/sim/fault_injector.h).
  int64_t server_crashes = 0;
  int64_t server_recoveries = 0;
  int64_t task_failures = 0;
  int64_t job_evictions = 0;
  int64_t backoff_deferrals = 0;
  int64_t checkpoints_taken = 0;
  double rolled_back_steps = 0.0;
  // Invariant-auditor results (both 0 when auditing is disabled).
  int64_t audit_checks = 0;
  int64_t audit_violations = 0;
  // Host wall-clock seconds per simulator phase over the whole run, mirrored
  // from the simulator's PhaseProfiler (src/obs/phase_profiler.h). Profiling
  // only: nondeterministic, so excluded from golden snapshots and determinism
  // comparisons; the registry exports the same totals as profiling gauges
  // named optimus_wall_<phase>_seconds.
  double wall_faults_s = 0.0;
  double wall_schedule_s = 0.0;
  double wall_advance_s = 0.0;
  double wall_audit_s = 0.0;
  // Event-kernel accounting (engine = events only; 0 under the interval
  // engine). events_processed counts handled events — stale entries the lazy
  // invalidation discards on pop are excluded. wall_events_s is the
  // event-kernel dispatch/advance phase (profiling only, like wall_* above).
  int64_t events_processed = 0;
  double wall_events_s = 0.0;
  std::vector<TimelinePoint> timeline;
};

}  // namespace optimus

#endif  // SRC_SIM_METRICS_H_
