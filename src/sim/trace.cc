#include "src/sim/trace.h"

#include <ostream>

#include "src/common/logging.h"

namespace optimus {

const char* SimEventTypeName(SimEventType type) {
  switch (type) {
    case SimEventType::kArrival:
      return "arrival";
    case SimEventType::kScheduled:
      return "scheduled";
    case SimEventType::kScaled:
      return "scaled";
    case SimEventType::kPaused:
      return "paused";
    case SimEventType::kResumed:
      return "resumed";
    case SimEventType::kStragglerReplaced:
      return "straggler_replaced";
    case SimEventType::kLearningRateDrop:
      return "lr_drop";
    case SimEventType::kCompleted:
      return "completed";
    case SimEventType::kServerCrash:
      return "server_crash";
    case SimEventType::kServerRecovered:
      return "server_recovered";
    case SimEventType::kTaskFailed:
      return "task_failed";
    case SimEventType::kEvicted:
      return "evicted";
    case SimEventType::kSlowdown:
      return "slowdown";
  }
  return "unknown";
}

void EventTrace::Record(double time_s, SimEventType type, int job_id, int num_ps,
                        int num_workers, std::string detail) {
  OPTIMUS_CHECK(events_.empty() || time_s >= events_.back().time_s - 1e-9)
      << "events must be recorded in time order";
  events_.push_back({time_s, type, job_id, num_ps, num_workers, std::move(detail)});
}

std::vector<SimEvent> EventTrace::ForJob(int job_id) const {
  std::vector<SimEvent> out;
  for (const SimEvent& e : events_) {
    if (e.job_id == job_id) {
      out.push_back(e);
    }
  }
  return out;
}

std::map<SimEventType, int64_t> EventTrace::CountByType() const {
  std::map<SimEventType, int64_t> counts;
  for (const SimEvent& e : events_) {
    ++counts[e.type];
  }
  return counts;
}

void EventTrace::WriteCsv(std::ostream& os) const {
  os << "time_s,event,job,ps,workers,detail\n";
  for (const SimEvent& e : events_) {
    os << e.time_s << "," << SimEventTypeName(e.type) << "," << e.job_id << ","
       << e.num_ps << "," << e.num_workers << "," << e.detail << "\n";
  }
}

}  // namespace optimus
