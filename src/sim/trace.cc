#include "src/sim/trace.h"

#include <cstring>
#include <ostream>

#include "src/common/logging.h"

namespace optimus {

const char* SimEventTypeName(SimEventType type) {
  switch (type) {
    case SimEventType::kArrival:
      return "arrival";
    case SimEventType::kScheduled:
      return "scheduled";
    case SimEventType::kScaled:
      return "scaled";
    case SimEventType::kPaused:
      return "paused";
    case SimEventType::kResumed:
      return "resumed";
    case SimEventType::kStragglerReplaced:
      return "straggler_replaced";
    case SimEventType::kLearningRateDrop:
      return "lr_drop";
    case SimEventType::kCompleted:
      return "completed";
    case SimEventType::kServerCrash:
      return "server_crash";
    case SimEventType::kServerRecovered:
      return "server_recovered";
    case SimEventType::kTaskFailed:
      return "task_failed";
    case SimEventType::kEvicted:
      return "evicted";
    case SimEventType::kSlowdown:
      return "slowdown";
    case SimEventType::kKilled:
      return "killed";
  }
  return "unknown";
}

void EventTrace::Reserve(size_t n) {
  if (!hash_only_) {
    records_.reserve(records_.size() + n);
  }
}

EventTrace::RawRecord& EventTrace::Push(double time_s, SimEventType type,
                                        int job_id, int num_ps, int num_workers) {
  OPTIMUS_CHECK(recorded_ == 0 || time_s >= last_time_s_ - 1e-9)
      << "events must be recorded in time order: new "
      << SimEventTypeName(type) << "@" << time_s << " job=" << job_id
      << " after " << SimEventTypeName(last_type_) << "@" << last_time_s_
      << " job=" << last_job_id_;
  last_time_s_ = time_s;
  last_type_ = type;
  last_job_id_ = job_id;
  if (hash_only_) {
    scratch_ = {time_s, type, job_id, num_ps, num_workers};
    return scratch_;
  }
  records_.push_back({time_s, type, job_id, num_ps, num_workers});
  return records_.back();
}

void EventTrace::Seal(const RawRecord& r, const std::string* detail) {
  constexpr uint64_t kFnvPrime = 1099511628211ULL;
  const auto mix_byte = [this](uint8_t b) {
    digest_ = (digest_ ^ b) * kFnvPrime;
  };
  const auto mix = [&mix_byte](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      mix_byte(static_cast<uint8_t>(v >> (8 * i)));
    }
  };
  uint64_t time_bits = 0;
  std::memcpy(&time_bits, &r.time_s, sizeof(time_bits));
  mix(time_bits);
  mix(static_cast<uint64_t>(r.type));
  mix(static_cast<uint64_t>(static_cast<int64_t>(r.job_id)));
  mix(static_cast<uint64_t>(static_cast<int64_t>(r.num_ps)));
  mix(static_cast<uint64_t>(static_cast<int64_t>(r.num_workers)));
  mix(static_cast<uint64_t>(r.detail_kind));
  if (detail != nullptr) {
    mix(static_cast<uint64_t>(detail->size()));
    for (char c : *detail) {
      mix_byte(static_cast<uint8_t>(c));
    }
  } else if (r.detail_kind == DetailKind::kFactor) {
    uint64_t factor_bits = 0;
    std::memcpy(&factor_bits, &r.num_arg, sizeof(factor_bits));
    mix(factor_bits);
  } else {
    mix(static_cast<uint64_t>(r.int_arg));
  }
  ++recorded_;
}

void EventTrace::Record(double time_s, SimEventType type, int job_id, int num_ps,
                        int num_workers, std::string detail) {
  RawRecord& r = Push(time_s, type, job_id, num_ps, num_workers);
  if (detail.empty()) {
    Seal(r, nullptr);
    return;
  }
  r.detail_kind = DetailKind::kString;
  Seal(r, &detail);
  if (!hash_only_) {
    r.int_arg = static_cast<int64_t>(strings_.size());
    strings_.push_back(std::move(detail));
  }
}

void EventTrace::RecordEpochs(double time_s, SimEventType type, int job_id,
                              int num_ps, int num_workers, int64_t epochs) {
  RawRecord& r = Push(time_s, type, job_id, num_ps, num_workers);
  r.detail_kind = DetailKind::kEpochs;
  r.int_arg = epochs;
  Seal(r, nullptr);
}

void EventTrace::RecordServer(double time_s, SimEventType type, int job_id,
                              int server_id) {
  RawRecord& r = Push(time_s, type, job_id, 0, 0);
  r.detail_kind = DetailKind::kServer;
  r.int_arg = server_id;
  Seal(r, nullptr);
}

void EventTrace::RecordFactor(double time_s, SimEventType type, int job_id,
                              double factor) {
  RawRecord& r = Push(time_s, type, job_id, 0, 0);
  r.detail_kind = DetailKind::kFactor;
  r.num_arg = factor;
  Seal(r, nullptr);
}

void EventTrace::Materialize() const {
  for (; materialized_ < records_.size(); ++materialized_) {
    const RawRecord& r = records_[materialized_];
    SimEvent e{r.time_s, r.type, r.job_id, r.num_ps, r.num_workers, ""};
    switch (r.detail_kind) {
      case DetailKind::kNone:
        break;
      case DetailKind::kString:
        e.detail = strings_[static_cast<size_t>(r.int_arg)];
        break;
      case DetailKind::kEpochs:
        e.detail = "epochs=" + std::to_string(r.int_arg);
        break;
      case DetailKind::kServer:
        e.detail = "server=" + std::to_string(r.int_arg);
        break;
      case DetailKind::kFactor:
        e.detail = "factor=" + std::to_string(r.num_arg);
        break;
    }
    events_.push_back(std::move(e));
  }
}

const std::vector<SimEvent>& EventTrace::events() const {
  Materialize();
  return events_;
}

std::vector<SimEvent> EventTrace::ForJob(int job_id) const {
  Materialize();
  std::vector<SimEvent> out;
  for (const SimEvent& e : events_) {
    if (e.job_id == job_id) {
      out.push_back(e);
    }
  }
  return out;
}

std::map<SimEventType, int64_t> EventTrace::CountByType() const {
  // Counting needs no detail strings; read the raw records directly.
  std::map<SimEventType, int64_t> counts;
  for (const RawRecord& r : records_) {
    ++counts[r.type];
  }
  return counts;
}

void EventTrace::WriteCsv(std::ostream& os) const {
  Materialize();
  os << "time_s,event,job,ps,workers,detail\n";
  for (const SimEvent& e : events_) {
    os << e.time_s << "," << SimEventTypeName(e.type) << "," << e.job_id << ","
       << e.num_ps << "," << e.num_workers << "," << e.detail << "\n";
  }
}

}  // namespace optimus
