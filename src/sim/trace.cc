#include "src/sim/trace.h"

#include <ostream>

#include "src/common/logging.h"

namespace optimus {

const char* SimEventTypeName(SimEventType type) {
  switch (type) {
    case SimEventType::kArrival:
      return "arrival";
    case SimEventType::kScheduled:
      return "scheduled";
    case SimEventType::kScaled:
      return "scaled";
    case SimEventType::kPaused:
      return "paused";
    case SimEventType::kResumed:
      return "resumed";
    case SimEventType::kStragglerReplaced:
      return "straggler_replaced";
    case SimEventType::kLearningRateDrop:
      return "lr_drop";
    case SimEventType::kCompleted:
      return "completed";
    case SimEventType::kServerCrash:
      return "server_crash";
    case SimEventType::kServerRecovered:
      return "server_recovered";
    case SimEventType::kTaskFailed:
      return "task_failed";
    case SimEventType::kEvicted:
      return "evicted";
    case SimEventType::kSlowdown:
      return "slowdown";
    case SimEventType::kKilled:
      return "killed";
  }
  return "unknown";
}

void EventTrace::Reserve(size_t n) { records_.reserve(records_.size() + n); }

EventTrace::RawRecord& EventTrace::Push(double time_s, SimEventType type,
                                        int job_id, int num_ps, int num_workers) {
  OPTIMUS_CHECK(records_.empty() || time_s >= records_.back().time_s - 1e-9)
      << "events must be recorded in time order: new "
      << SimEventTypeName(type) << "@" << time_s << " job=" << job_id
      << " after " << SimEventTypeName(records_.back().type) << "@"
      << records_.back().time_s << " job=" << records_.back().job_id;
  records_.push_back({time_s, type, job_id, num_ps, num_workers});
  return records_.back();
}

void EventTrace::Record(double time_s, SimEventType type, int job_id, int num_ps,
                        int num_workers, std::string detail) {
  RawRecord& r = Push(time_s, type, job_id, num_ps, num_workers);
  if (!detail.empty()) {
    r.detail_kind = DetailKind::kString;
    r.int_arg = static_cast<int64_t>(strings_.size());
    strings_.push_back(std::move(detail));
  }
}

void EventTrace::RecordEpochs(double time_s, SimEventType type, int job_id,
                              int num_ps, int num_workers, int64_t epochs) {
  RawRecord& r = Push(time_s, type, job_id, num_ps, num_workers);
  r.detail_kind = DetailKind::kEpochs;
  r.int_arg = epochs;
}

void EventTrace::RecordServer(double time_s, SimEventType type, int job_id,
                              int server_id) {
  RawRecord& r = Push(time_s, type, job_id, 0, 0);
  r.detail_kind = DetailKind::kServer;
  r.int_arg = server_id;
}

void EventTrace::RecordFactor(double time_s, SimEventType type, int job_id,
                              double factor) {
  RawRecord& r = Push(time_s, type, job_id, 0, 0);
  r.detail_kind = DetailKind::kFactor;
  r.num_arg = factor;
}

void EventTrace::Materialize() const {
  for (; materialized_ < records_.size(); ++materialized_) {
    const RawRecord& r = records_[materialized_];
    SimEvent e{r.time_s, r.type, r.job_id, r.num_ps, r.num_workers, ""};
    switch (r.detail_kind) {
      case DetailKind::kNone:
        break;
      case DetailKind::kString:
        e.detail = strings_[static_cast<size_t>(r.int_arg)];
        break;
      case DetailKind::kEpochs:
        e.detail = "epochs=" + std::to_string(r.int_arg);
        break;
      case DetailKind::kServer:
        e.detail = "server=" + std::to_string(r.int_arg);
        break;
      case DetailKind::kFactor:
        e.detail = "factor=" + std::to_string(r.num_arg);
        break;
    }
    events_.push_back(std::move(e));
  }
}

const std::vector<SimEvent>& EventTrace::events() const {
  Materialize();
  return events_;
}

std::vector<SimEvent> EventTrace::ForJob(int job_id) const {
  Materialize();
  std::vector<SimEvent> out;
  for (const SimEvent& e : events_) {
    if (e.job_id == job_id) {
      out.push_back(e);
    }
  }
  return out;
}

std::map<SimEventType, int64_t> EventTrace::CountByType() const {
  // Counting needs no detail strings; read the raw records directly.
  std::map<SimEventType, int64_t> counts;
  for (const RawRecord& r : records_) {
    ++counts[r.type];
  }
  return counts;
}

void EventTrace::WriteCsv(std::ostream& os) const {
  Materialize();
  os << "time_s,event,job,ps,workers,detail\n";
  for (const SimEvent& e : events_) {
    os << e.time_s << "," << SimEventTypeName(e.type) << "," << e.job_id << ","
       << e.num_ps << "," << e.num_workers << "," << e.detail << "\n";
  }
}

}  // namespace optimus
