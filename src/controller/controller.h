// Production-facing Optimus controller (§5.5).
//
// On a real cluster Optimus runs as a pod that polls the Kubernetes master
// for cluster and job state, keeps per-job performance models, and rewrites
// each job's worker/parameter-server deployment every scheduling interval,
// persisting its state to etcd so a restarted controller resumes seamlessly.
//
// This class is that controller as a library, decoupled from any cluster
// substrate: callers register jobs (with their (p, w) pre-run measurements),
// report per-interval observations (new loss points, measured speed,
// progress), and ask for a scheduling decision against the current server
// state. Fault tolerance is modeled by SaveState()/RestoreState(): the
// snapshot carries every job's spec, progress, and model samples, and a
// restored controller refits its models and produces identical decisions.
//
// The discrete-time simulator (src/sim) drives the same building blocks with
// a tighter loop; this API is the integration surface a real deployment (or a
// different simulator) would use.

#ifndef SRC_CONTROLLER_CONTROLLER_H_
#define SRC_CONTROLLER_CONTROLLER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/checkpoint.h"
#include "src/cluster/job.h"
#include "src/cluster/server.h"
#include "src/perfmodel/convergence_model.h"
#include "src/perfmodel/speed_model.h"
#include "src/sched/placement.h"
#include "src/sched/scheduler.h"

namespace optimus {

struct ControllerOptions {
  PlacementPolicy placement = PlacementPolicy::kOptimusPack;
  // Marginal-gain damping for jobs below the progress cutoff (§4.1).
  double young_job_priority_factor = 0.95;
  double young_job_progress_cutoff = 0.15;
  // Remaining-epochs prior before the convergence model has enough data.
  double default_remaining_epochs = 30.0;
  CheckpointConfig checkpoint;
};

// Per-interval report from a running job (what the training framework and
// the cluster monitor can observe).
struct JobObservation {
  int job_id = 0;
  // Cumulative steps completed.
  double steps_done = 0.0;
  // Loss points collected since the last report.
  std::vector<LossSample> new_loss_points;
  // Measured training speed over the last interval (steps/s; <= 0 if none).
  double measured_speed = 0.0;
};

struct ScheduleDecision {
  AllocationMap allocations;
  std::map<int, JobPlacement> placements;
  // Jobs that received no placeable resources this interval.
  std::vector<int> paused;
};

class OptimusController {
 public:
  explicit OptimusController(ControllerOptions options = {});

  // --- Job lifecycle -------------------------------------------------------
  // Registers a new job with the speed measurements from its (p, w) pre-run.
  void RegisterJob(const JobSpec& spec, const std::vector<SpeedSample>& pre_run);
  // Feeds fresh observations into the job's online models.
  void ReportObservation(const JobObservation& observation);
  // Restarts the job's convergence fitting (learning-rate change, §7).
  void NotifyLearningRateChange(int job_id);
  // Removes a finished (or killed) job.
  void CompleteJob(int job_id);

  bool HasJob(int job_id) const;
  size_t num_jobs() const { return jobs_.size(); }

  // --- Scheduling ----------------------------------------------------------
  // One full rescheduling round against the given servers (their *capacities*
  // are used; the controller owns all DL allocations). Updates each job's
  // current allocation to the decision.
  ScheduleDecision Schedule(const std::vector<Server>& servers);

  // --- Introspection -------------------------------------------------------
  double EstimateRemainingEpochs(int job_id) const;
  // Estimated speed (steps/s) at a hypothetical allocation; 0 when unknown.
  double EstimateSpeed(int job_id, int num_ps, int num_workers) const;
  Allocation CurrentAllocation(int job_id) const;

  // --- Fault tolerance (§5.5) ----------------------------------------------
  // Serializes all controller state (specs, progress, model samples,
  // current allocations) into a text snapshot.
  std::string SaveState() const;
  // Rebuilds a controller from a snapshot; models are refitted from their
  // samples, so subsequent decisions match the original controller's.
  // Returns nullptr on a malformed snapshot.
  static std::unique_ptr<OptimusController> RestoreState(const std::string& snapshot,
                                                         ControllerOptions options = {});

 private:
  struct ManagedJob {
    JobSpec spec;
    double steps_done = 0.0;
    Allocation current;
    ConvergenceModel convergence;
    SpeedModel speed{TrainingMode::kSync, 1};
    int rescalings = 0;
  };

  SchedJob MakeSchedJob(const ManagedJob& job) const;
  const ManagedJob& Get(int job_id) const;
  ManagedJob& Get(int job_id);

  ControllerOptions options_;
  std::map<int, ManagedJob> jobs_;
};

}  // namespace optimus

#endif  // SRC_CONTROLLER_CONTROLLER_H_
