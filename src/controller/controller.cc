#include "src/controller/controller.h"

#include <algorithm>
#include <sstream>

#include "src/common/logging.h"
#include "src/models/model_zoo.h"
#include "src/sched/optimus_allocator.h"

namespace optimus {

OptimusController::OptimusController(ControllerOptions options) : options_(options) {}

void OptimusController::RegisterJob(const JobSpec& spec,
                                    const std::vector<SpeedSample>& pre_run) {
  OPTIMUS_CHECK(spec.model != nullptr);
  OPTIMUS_CHECK(!HasJob(spec.id)) << "job " << spec.id << " already registered";
  ManagedJob job;
  job.spec = spec;
  job.speed = SpeedModel(spec.mode, spec.GlobalBatch());
  for (const SpeedSample& sample : pre_run) {
    job.speed.AddSample(sample);
  }
  job.speed.Fit();
  jobs_.emplace(spec.id, std::move(job));
}

void OptimusController::ReportObservation(const JobObservation& observation) {
  ManagedJob& job = Get(observation.job_id);
  job.steps_done = std::max(job.steps_done, observation.steps_done);
  for (const LossSample& sample : observation.new_loss_points) {
    job.convergence.AddSample(sample.step, sample.loss);
  }
  job.convergence.Fit();
  if (observation.measured_speed > 0.0 &&
      ActiveAllocation(job.current, job.spec.comm)) {
    job.speed.AddSample(job.current.num_ps, job.current.num_workers,
                        observation.measured_speed);
    job.speed.Fit();
  }
}

void OptimusController::NotifyLearningRateChange(int job_id) {
  Get(job_id).convergence.Reset();
}

void OptimusController::CompleteJob(int job_id) {
  OPTIMUS_CHECK(HasJob(job_id)) << "unknown job " << job_id;
  jobs_.erase(job_id);
}

bool OptimusController::HasJob(int job_id) const { return jobs_.count(job_id) > 0; }

const OptimusController::ManagedJob& OptimusController::Get(int job_id) const {
  auto it = jobs_.find(job_id);
  OPTIMUS_CHECK(it != jobs_.end()) << "unknown job " << job_id;
  return it->second;
}

OptimusController::ManagedJob& OptimusController::Get(int job_id) {
  auto it = jobs_.find(job_id);
  OPTIMUS_CHECK(it != jobs_.end()) << "unknown job " << job_id;
  return it->second;
}

double OptimusController::EstimateRemainingEpochs(int job_id) const {
  const ManagedJob& job = Get(job_id);
  if (job.convergence.fitted()) {
    return job.convergence.PredictRemainingEpochs(
        job.steps_done, job.spec.convergence_delta, job.spec.patience,
        job.spec.StepsPerEpoch());
  }
  return options_.default_remaining_epochs;
}

double OptimusController::EstimateSpeed(int job_id, int num_ps, int num_workers) const {
  const ManagedJob& job = Get(job_id);
  if (!job.speed.fitted() || num_ps < 1 || num_workers < 1) {
    return 0.0;
  }
  return job.speed.Estimate(num_ps, num_workers);
}

Allocation OptimusController::CurrentAllocation(int job_id) const {
  return Get(job_id).current;
}

SchedJob OptimusController::MakeSchedJob(const ManagedJob& job) const {
  SchedJob sj;
  sj.job_id = job.spec.id;
  sj.mode = job.spec.mode;
  sj.comm = job.spec.comm;
  sj.worker_demand = job.spec.worker_demand;
  sj.ps_demand = job.spec.ps_demand;
  sj.max_ps = job.spec.max_ps;
  sj.max_workers = job.spec.max_workers;
  sj.remaining_epochs = EstimateRemainingEpochs(job.spec.id);

  const SpeedModel* model = &job.speed;
  const double spe = static_cast<double>(job.spec.StepsPerEpoch());
  sj.speed = [model, spe](int p, int w) {
    if (!model->fitted()) {
      return 0.0;
    }
    return model->Estimate(p, w) / spe;
  };

  // Young jobs (progress below the cutoff, per the convergence model's own
  // total-epoch estimate) get damped marginal gains (§4.1).
  bool young = true;
  if (job.convergence.fitted()) {
    const double total = static_cast<double>(job.convergence.PredictTotalEpochs(
        job.spec.convergence_delta, job.spec.patience, job.spec.StepsPerEpoch()));
    if (total > 0.0) {
      young = job.steps_done / spe / total < options_.young_job_progress_cutoff;
    }
  }
  if (young) {
    sj.priority_factor = options_.young_job_priority_factor;
  }
  return sj;
}

ScheduleDecision OptimusController::Schedule(const std::vector<Server>& servers) {
  ScheduleDecision decision;
  if (jobs_.empty()) {
    return decision;
  }

  Resources reference = jobs_.begin()->second.spec.worker_demand;
  Resources capacity = PlaceableCapacity(servers, reference);

  // Jobs whose checkpoint budget is spent keep their allocation (frozen).
  std::vector<const ManagedJob*> frozen;
  std::vector<const ManagedJob*> schedulable;
  for (const auto& [id, job] : jobs_) {
    if (ActiveAllocation(job.current, job.spec.comm) &&
        !ScalingAllowed(job.rescalings, options_.checkpoint)) {
      frozen.push_back(&job);
      capacity -= job.spec.worker_demand * job.current.num_workers +
                  job.spec.ps_demand * job.current.num_ps;
    } else {
      schedulable.push_back(&job);
    }
  }

  std::vector<SchedJob> sched_jobs;
  sched_jobs.reserve(schedulable.size());
  for (const ManagedJob* job : schedulable) {
    sched_jobs.push_back(MakeSchedJob(*job));
  }
  AllocationMap alloc = OptimusAllocator().Allocate(sched_jobs, capacity);

  std::vector<PlacementJobInput> inputs;
  for (const ManagedJob* job : frozen) {
    inputs.push_back(
        {job->spec.id, job->current, job->spec.worker_demand, job->spec.ps_demand});
  }
  for (const ManagedJob* job : schedulable) {
    Allocation a;
    if (auto it = alloc.find(job->spec.id); it != alloc.end()) {
      a = it->second;
    }
    inputs.push_back({job->spec.id, a, job->spec.worker_demand, job->spec.ps_demand});
  }
  PlacementResult placed = PlaceJobs(options_.placement, inputs, servers);

  for (auto& [id, job] : jobs_) {
    Allocation a;
    if (auto it = placed.effective_alloc.find(id); it != placed.effective_alloc.end()) {
      a = it->second;
    }
    if (ActiveAllocation(a, job.spec.comm)) {
      if (ActiveAllocation(job.current, job.spec.comm) && !(a == job.current)) {
        ++job.rescalings;
      }
      job.current = a;
      decision.allocations[id] = a;
      decision.placements[id] = placed.placements.at(id);
    } else {
      job.current = Allocation{};
      decision.paused.push_back(id);
    }
  }
  std::sort(decision.paused.begin(), decision.paused.end());
  return decision;
}

// ---------------------------------------------------------------------------
// State persistence. Line-oriented text format, versioned:
//   optimus-controller-state v1
//   job <id>
//   spec <model> <mode> <delta> <patience> <batch> <mbatch> <arrival> <scale>
//        <max_ps> <max_w> <wd cpu mem gpu bw> <pd cpu mem gpu bw> <lr_drop...>
//   progress <steps_done> <p> <w> <rescalings>
//   conv <n> followed by n "step loss" lines
//   speed <n> followed by n "p w speed" lines
//   end
// ---------------------------------------------------------------------------

namespace {

void WriteResources(std::ostream& os, const Resources& r) {
  os << " " << r.cpu() << " " << r.memory_gb() << " " << r.gpu() << " "
     << r.bandwidth_gbps();
}

Resources ReadResources(std::istream& is) {
  double cpu = 0.0;
  double mem = 0.0;
  double gpu = 0.0;
  double bw = 0.0;
  is >> cpu >> mem >> gpu >> bw;
  return Resources(cpu, mem, gpu, bw);
}

}  // namespace

std::string OptimusController::SaveState() const {
  std::ostringstream os;
  os.precision(17);
  os << "optimus-controller-state v1\n";
  for (const auto& [id, job] : jobs_) {
    const JobSpec& spec = job.spec;
    os << "job " << id << "\n";
    os << "spec " << spec.model->name << " "
       << (spec.mode == TrainingMode::kSync ? "sync" : "async") << " "
       << spec.convergence_delta << " " << spec.patience << " " << spec.global_batch
       << " " << spec.async_minibatch << " " << spec.arrival_time_s << " "
       << spec.dataset_scale << " " << spec.max_ps << " " << spec.max_workers;
    WriteResources(os, spec.worker_demand);
    WriteResources(os, spec.ps_demand);
    if (spec.lr_drop.has_value()) {
      os << " lr_drop " << spec.lr_drop->epoch << " " << spec.lr_drop->c0 << " "
         << spec.lr_drop->c2;
    } else {
      os << " no_lr_drop";
    }
    os << "\n";
    os << "progress " << job.steps_done << " " << job.current.num_ps << " "
       << job.current.num_workers << " " << job.rescalings << "\n";
    os << "conv " << job.convergence.samples().size() << "\n";
    for (const LossSample& s : job.convergence.samples()) {
      os << s.step << " " << s.loss << "\n";
    }
    os << "speed " << job.speed.samples().size() << "\n";
    for (const SpeedSample& s : job.speed.samples()) {
      os << s.num_ps << " " << s.num_workers << " " << s.speed << "\n";
    }
    os << "end\n";
  }
  return os.str();
}

std::unique_ptr<OptimusController> OptimusController::RestoreState(
    const std::string& snapshot, ControllerOptions options) {
  std::istringstream is(snapshot);
  std::string header;
  std::string version;
  is >> header >> version;
  if (header != "optimus-controller-state" || version != "v1") {
    OPTIMUS_LOG(Error) << "unrecognized controller snapshot header";
    return nullptr;
  }

  auto controller = std::make_unique<OptimusController>(options);
  std::string token;
  while (is >> token) {
    if (token != "job") {
      OPTIMUS_LOG(Error) << "snapshot parse error: expected 'job', got " << token;
      return nullptr;
    }
    int id = 0;
    is >> id;

    JobSpec spec;
    spec.id = id;
    std::string model_name;
    std::string mode;
    is >> token;  // "spec"
    if (token != "spec") {
      return nullptr;
    }
    is >> model_name >> mode >> spec.convergence_delta >> spec.patience >>
        spec.global_batch >> spec.async_minibatch >> spec.arrival_time_s >>
        spec.dataset_scale >> spec.max_ps >> spec.max_workers;
    spec.model = &FindModel(model_name);
    spec.mode = mode == "sync" ? TrainingMode::kSync : TrainingMode::kAsync;
    spec.worker_demand = ReadResources(is);
    spec.ps_demand = ReadResources(is);
    is >> token;
    if (token == "lr_drop") {
      LearningRateDrop drop;
      is >> drop.epoch >> drop.c0 >> drop.c2;
      spec.lr_drop = drop;
    } else if (token != "no_lr_drop") {
      return nullptr;
    }

    ManagedJob job;
    job.spec = spec;
    job.speed = SpeedModel(spec.mode, spec.GlobalBatch());

    is >> token;  // "progress"
    if (token != "progress") {
      return nullptr;
    }
    is >> job.steps_done >> job.current.num_ps >> job.current.num_workers >>
        job.rescalings;

    is >> token;  // "conv"
    if (token != "conv") {
      return nullptr;
    }
    size_t n = 0;
    is >> n;
    for (size_t i = 0; i < n; ++i) {
      double step = 0.0;
      double loss = 0.0;
      is >> step >> loss;
      job.convergence.AddSample(step, loss);
    }
    job.convergence.Fit();

    is >> token;  // "speed"
    if (token != "speed") {
      return nullptr;
    }
    is >> n;
    for (size_t i = 0; i < n; ++i) {
      SpeedSample s;
      is >> s.num_ps >> s.num_workers >> s.speed;
      job.speed.AddSample(s);
    }
    job.speed.Fit();

    is >> token;  // "end"
    if (token != "end" || !is) {
      return nullptr;
    }
    controller->jobs_.emplace(id, std::move(job));
  }
  return controller;
}

}  // namespace optimus
