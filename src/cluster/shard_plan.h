// Rack-aligned partition of the server list into contiguous shards.
//
// A ShardPlan splits server ids [0, n) into `num_shards` contiguous ranges
// whose boundaries coincide with rack boundaries (the scenario DSL's
// `cluster.rack_size` layout) whenever a rack partition exists. The sharded
// scheduling round (src/sched/sharded_round.h) runs its phase-1 local passes
// over these ranges and the sharded placement fast path keeps one server
// pool per range; both reduce to the unsharded behavior when the plan has a
// single shard.
//
// The plan is a pure function of (num_shards, n_servers, rack_size) — no
// randomness, no dependence on server state — so every (shards, threads)
// configuration sees the same partition.

#ifndef SRC_CLUSTER_SHARD_PLAN_H_
#define SRC_CLUSTER_SHARD_PLAN_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace optimus {

class ShardPlan {
 public:
  // Single-shard plan covering [0, n_servers) — the unsharded default.
  ShardPlan() = default;

  // Splits [0, n_servers) into `num_shards` contiguous ranges. With a rack
  // partition (rack_size > 0) every boundary lands on a rack edge: racks are
  // dealt to shards as evenly as contiguity allows, so no rack is split
  // across shards. Without racks the split is an even server-count split.
  // num_shards is clamped to [1, max(1, n_servers)]; shards beyond the
  // number of racks come out empty (harmless, never chosen by the scenario
  // validator).
  static ShardPlan Build(int num_shards, int n_servers, int rack_size);

  int num_shards() const { return static_cast<int>(ranges_.size()); }
  int n_servers() const { return n_servers_; }
  // Shard s's server-id range [first, second).
  const std::pair<int, int>& range(int s) const { return ranges_[static_cast<size_t>(s)]; }
  // Shard owning server id `s` (ranges are contiguous and cover [0, n)).
  int ShardOf(int server) const;

 private:
  int n_servers_ = 0;
  std::vector<std::pair<int, int>> ranges_;
};

}  // namespace optimus

#endif  // SRC_CLUSTER_SHARD_PLAN_H_
