// Checkpoint-based elastic scaling cost model (§5.4, §7 "Scaling overhead").
//
// Adjusting a job's resources saves the model to HDFS and restarts from the
// checkpoint. The stall is the serialized model size over HDFS throughput
// (write + read) plus container relaunch time. A per-job checkpoint budget
// can bound how often long-running jobs are allowed to rescale.

#ifndef SRC_CLUSTER_CHECKPOINT_H_
#define SRC_CLUSTER_CHECKPOINT_H_

#include "src/models/model_zoo.h"

namespace optimus {

struct CheckpointConfig {
  // Effective HDFS write/read throughput seen by one job (bytes/s).
  double hdfs_throughput_bps = 100e6;
  // Fixed cost to tear down and relaunch the job's containers.
  double relaunch_overhead_s = 15.0;
  // Maximum scaling events per job; <= 0 means unlimited (§7 suggests
  // limiting restarts for large jobs).
  int max_scalings_per_job = 0;
};

// Stall (seconds) for one checkpoint-save + restore + relaunch of `model`.
double CheckpointStallSeconds(const ModelSpec& model, const CheckpointConfig& config);

// Whether a job that has already rescaled `num_scalings_so_far` times may
// rescale again under `config`.
bool ScalingAllowed(int num_scalings_so_far, const CheckpointConfig& config);

}  // namespace optimus

#endif  // SRC_CLUSTER_CHECKPOINT_H_
