#include "src/cluster/resources.h"

#include <cmath>
#include <sstream>

namespace optimus {

namespace {
constexpr double kEps = 1e-9;
}  // namespace

const char* ResourceTypeName(ResourceType type) {
  switch (type) {
    case ResourceType::kCpu:
      return "cpu";
    case ResourceType::kMemoryGb:
      return "memory_gb";
    case ResourceType::kGpu:
      return "gpu";
    case ResourceType::kBandwidthGbps:
      return "bandwidth_gbps";
  }
  return "unknown";
}

Resources::Resources(double cpu, double memory_gb, double gpu, double bandwidth_gbps) {
  values_[static_cast<size_t>(ResourceType::kCpu)] = cpu;
  values_[static_cast<size_t>(ResourceType::kMemoryGb)] = memory_gb;
  values_[static_cast<size_t>(ResourceType::kGpu)] = gpu;
  values_[static_cast<size_t>(ResourceType::kBandwidthGbps)] = bandwidth_gbps;
}

Resources& Resources::operator+=(const Resources& other) {
  for (size_t i = 0; i < kNumResourceTypes; ++i) {
    values_[i] += other.values_[i];
  }
  return *this;
}

Resources& Resources::operator-=(const Resources& other) {
  for (size_t i = 0; i < kNumResourceTypes; ++i) {
    values_[i] -= other.values_[i];
  }
  return *this;
}

Resources Resources::operator*(double scalar) const {
  Resources out = *this;
  for (size_t i = 0; i < kNumResourceTypes; ++i) {
    out.values_[i] *= scalar;
  }
  return out;
}

bool Resources::Fits(const Resources& demand) const {
  for (size_t i = 0; i < kNumResourceTypes; ++i) {
    if (demand.values_[i] > values_[i] + kEps) {
      return false;
    }
  }
  return true;
}

bool Resources::IsNonNegative() const {
  for (double v : values_) {
    if (v < -kEps) {
      return false;
    }
  }
  return true;
}

double Resources::DominantShare(const Resources& capacity) const {
  double share = 0.0;
  for (size_t i = 0; i < kNumResourceTypes; ++i) {
    if (capacity.values_[i] > kEps) {
      share = std::max(share, values_[i] / capacity.values_[i]);
    }
  }
  return share;
}

ResourceType Resources::DominantResource(const Resources& capacity) const {
  double share = -1.0;
  size_t best = 0;
  for (size_t i = 0; i < kNumResourceTypes; ++i) {
    if (capacity.values_[i] > kEps) {
      const double s = values_[i] / capacity.values_[i];
      if (s > share) {
        share = s;
        best = i;
      }
    }
  }
  return static_cast<ResourceType>(best);
}

std::string Resources::ToString() const {
  std::ostringstream os;
  os << "{cpu=" << cpu() << ", mem=" << memory_gb() << "GB, gpu=" << gpu()
     << ", bw=" << bandwidth_gbps() << "Gbps}";
  return os.str();
}

}  // namespace optimus
