// Straggler injection and handling (§5.2).
//
// Stragglers arise from resource contention and unbalanced workloads. The
// injector randomly slows a job's slowest worker; the handler implements the
// paper's policy: a worker running below a threshold fraction of the median
// speed is replaced by relaunching it, which costs a short stall but restores
// full speed.

#ifndef SRC_CLUSTER_STRAGGLER_H_
#define SRC_CLUSTER_STRAGGLER_H_

#include "src/cluster/job.h"
#include "src/common/rng.h"

namespace optimus {

struct StragglerConfig {
  // Probability, per scheduling interval and per job, that one of its workers
  // becomes a straggler. 0 disables injection.
  double injection_prob_per_interval = 0.0;
  // Injected slow factor range (fraction of normal speed). The range
  // deliberately straddles detect_threshold: injected factors in
  // [detect_threshold, slow_factor_hi) — e.g. a worker at 0.6 of the median —
  // are "mild" stragglers the paper's policy does NOT replace; they ride
  // until natural recovery. Only factors strictly below the threshold
  // trigger replacement, and a worker at exactly half the median is left in
  // place (detection is a strict `<` comparison). Pinned by
  // StragglerBoundaryTest in tests/fault_test.cc.
  double slow_factor_lo = 0.3;
  double slow_factor_hi = 0.7;
  // Detection threshold: a worker strictly below this fraction of the median
  // speed is declared a straggler (the paper uses half the median).
  double detect_threshold = 0.5;
  // Stall charged to the job when a straggler is replaced (launch a new
  // worker container and hand over the data shard).
  double replace_delay_s = 30.0;
  // Whether the scheduler replaces detected stragglers (Optimus does; a
  // baseline without §5.2 would leave them in place).
  bool handling_enabled = true;
  // Probability per interval that an unhandled straggler recovers on its own
  // (the underlying contention is transient).
  double natural_recovery_prob = 0.35;
};

class StragglerModel {
 public:
  explicit StragglerModel(StragglerConfig config) : config_(config) {}

  const StragglerConfig& config() const { return config_; }

  // Called once per scheduling interval per running job: possibly injects a
  // straggler (slowing the job's slowest worker), then applies detection /
  // replacement. Returns true when a replacement happened this interval.
  bool Step(Job* job, Rng* rng);

  int64_t injections() const { return injections_; }
  int64_t replacements() const { return replacements_; }

 private:
  StragglerConfig config_;
  int64_t injections_ = 0;
  int64_t replacements_ = 0;
};

}  // namespace optimus

#endif  // SRC_CLUSTER_STRAGGLER_H_
