// HDFS-style training-data serving (§5.1).
//
// Training data is stored in fixed-size chunks (128 MB by default) and
// assigned to workers round-robin so that every worker processes a similar
// share. When elastic scaling changes the worker count, the assignment is
// rebalanced while moving as few chunks as possible.

#ifndef SRC_CLUSTER_DATA_SERVING_H_
#define SRC_CLUSTER_DATA_SERVING_H_

#include <cstdint>
#include <vector>

#include "src/models/model_zoo.h"

namespace optimus {

inline constexpr int64_t kDefaultChunkBytes = 128LL * 1024 * 1024;

// Approximate on-disk bytes of one training example for a model's dataset
// (raw images are large, text examples are small, audio is the largest).
int64_t EstimateExampleBytes(const ModelSpec& spec);

// Total dataset bytes after optional downscaling.
int64_t EstimateDatasetBytes(const ModelSpec& spec, double dataset_scale = 1.0);

class DataServing {
 public:
  // Creates the chunk set for a dataset of `dataset_bytes` (at least 1 chunk).
  explicit DataServing(int64_t dataset_bytes, int64_t chunk_bytes = kDefaultChunkBytes);

  int64_t num_chunks() const { return static_cast<int64_t>(chunk_owner_.size()); }

  // Assigns all chunks round-robin over `num_workers` workers, replacing any
  // previous assignment.
  void AssignInitial(int num_workers);

  // Rebalances the existing assignment to a new worker count, moving the
  // minimum number of chunks. Returns the number of chunks moved.
  int64_t Rebalance(int new_num_workers);

  int num_workers() const { return num_workers_; }

  // Chunks owned by each worker.
  std::vector<int64_t> ChunksPerWorker() const;

  // max - min chunks across workers; the balance invariant is <= 1.
  int64_t MaxMinSpread() const;

 private:
  std::vector<int> chunk_owner_;  // chunk index -> worker index
  int num_workers_ = 0;
};

}  // namespace optimus

#endif  // SRC_CLUSTER_DATA_SERVING_H_
