#include "src/cluster/straggler.h"

#include "src/common/logging.h"

namespace optimus {

bool StragglerModel::Step(Job* job, Rng* rng) {
  OPTIMUS_CHECK(job != nullptr);
  OPTIMUS_CHECK(rng != nullptr);

  // Transient contention can clear up on its own, whether or not the
  // scheduler intervenes.
  if (job->slowest_worker_factor() < 1.0 &&
      rng->Bernoulli(config_.natural_recovery_prob)) {
    job->set_slowest_worker_factor(1.0);
  }

  if (config_.injection_prob_per_interval > 0.0 && job->num_workers() > 0 &&
      rng->Bernoulli(config_.injection_prob_per_interval)) {
    const double factor = rng->Uniform(config_.slow_factor_lo, config_.slow_factor_hi);
    // A newly injected straggler only matters if it is slower than whatever
    // is already limiting the job.
    if (factor < job->slowest_worker_factor()) {
      job->set_slowest_worker_factor(factor);
    }
    ++injections_;
  }

  // Detection: healthy workers run at factor 1.0 (the median), so the
  // job-level condition reduces to comparing the slowest factor with the
  // threshold. For synchronous jobs the same signal is derived from gradient
  // arrival gaps at the parameter servers (§5.2) — identical factor here.
  if (config_.handling_enabled &&
      job->slowest_worker_factor() < config_.detect_threshold) {
    job->set_slowest_worker_factor(1.0);
    job->AddStall(config_.replace_delay_s);
    ++replacements_;
    return true;
  }
  return false;
}

}  // namespace optimus
