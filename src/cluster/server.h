// Physical servers and the cluster they form.
//
// Mirrors the paper's testbed: a mix of CPU servers and GPU servers behind a
// single switch. Task placement (workers / parameter servers) consumes server
// resources at container granularity.

#ifndef SRC_CLUSTER_SERVER_H_
#define SRC_CLUSTER_SERVER_H_

#include <string>
#include <vector>

#include "src/cluster/resources.h"

namespace optimus {

class Server {
 public:
  Server(int id, Resources capacity) : id_(id), capacity_(capacity) {}

  int id() const { return id_; }
  const Resources& capacity() const { return capacity_; }
  const Resources& used() const { return used_; }
  Resources Free() const { return capacity_ - used_; }

  // Availability (fault injection): a crashed server keeps its capacity
  // bookkeeping but accepts no placements until it recovers.
  bool available() const { return available_; }
  void SetAvailable(bool up) { available_ = up; }

  bool CanFit(const Resources& demand) const {
    return available_ && Free().Fits(demand);
  }

  // Reserves resources; fatal if they do not fit (placement bugs must not be
  // silently absorbed).
  void Allocate(const Resources& demand);
  void Release(const Resources& demand);

  // Drops all allocations (used at the start of a full rescheduling round).
  void Reset() { used_ = Resources(); }

 private:
  int id_;
  Resources capacity_;
  Resources used_;
  bool available_ = true;
};

// Builds the paper's 13-server testbed: 7 CPU servers (two 8-core E5-2650,
// 80 GB) and 6 GPU servers (8-core E5-1660, 2 GPUs, 48 GB), all on 1 GbE.
std::vector<Server> BuildTestbed();

// Builds a homogeneous cluster of `n` servers with the given capacity.
std::vector<Server> BuildUniformCluster(int n, const Resources& capacity);

// Sum of capacities across servers.
Resources TotalCapacity(const std::vector<Server>& servers);

// Sum of free resources across servers.
Resources TotalFree(const std::vector<Server>& servers);

// Cluster capacity as actually consumable at container granularity: each
// server contributes `reference_demand` times the number of such containers
// it can host. The raw capacity sum (Eqn 7) over-counts per-server fragments
// (e.g. a 16-core server holds only three 5-core containers), which makes
// allocators hand out allocations that placement must then shrink.
// Unavailable (crashed) servers contribute nothing, so allocators see the
// reduced capacity of a faulted cluster.
Resources PlaceableCapacity(const std::vector<Server>& servers,
                            const Resources& reference_demand);

}  // namespace optimus

#endif  // SRC_CLUSTER_SERVER_H_
