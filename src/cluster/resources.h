// Multi-dimensional resource vectors.
//
// The paper's cluster has R resource types (CPU cores, memory, GPU,
// bandwidth); DRF-style dominant shares and the capacity constraint (Eqn 7)
// both operate on these vectors.

#ifndef SRC_CLUSTER_RESOURCES_H_
#define SRC_CLUSTER_RESOURCES_H_

#include <array>
#include <cstddef>
#include <string>

namespace optimus {

enum class ResourceType {
  kCpu = 0,
  kMemoryGb = 1,
  kGpu = 2,
  kBandwidthGbps = 3,
};

inline constexpr size_t kNumResourceTypes = 4;

const char* ResourceTypeName(ResourceType type);

class Resources {
 public:
  Resources() { values_.fill(0.0); }
  Resources(double cpu, double memory_gb, double gpu, double bandwidth_gbps);

  double Get(ResourceType type) const { return values_[static_cast<size_t>(type)]; }
  void Set(ResourceType type, double value) { values_[static_cast<size_t>(type)] = value; }

  double cpu() const { return Get(ResourceType::kCpu); }
  double memory_gb() const { return Get(ResourceType::kMemoryGb); }
  double gpu() const { return Get(ResourceType::kGpu); }
  double bandwidth_gbps() const { return Get(ResourceType::kBandwidthGbps); }

  Resources& operator+=(const Resources& other);
  Resources& operator-=(const Resources& other);
  friend Resources operator+(Resources a, const Resources& b) { return a += b; }
  friend Resources operator-(Resources a, const Resources& b) { return a -= b; }
  Resources operator*(double scalar) const;
  bool operator==(const Resources& other) const { return values_ == other.values_; }

  // True when every component of `demand` fits within this vector (with a
  // small epsilon for floating-point accumulation).
  bool Fits(const Resources& demand) const;

  // True when all components are >= 0 (within epsilon).
  bool IsNonNegative() const;

  // Largest ratio demand_r / capacity_r over resource types with nonzero
  // capacity — the DRF dominant share of `this` demand under `capacity`.
  double DominantShare(const Resources& capacity) const;

  // The resource type achieving the dominant share.
  ResourceType DominantResource(const Resources& capacity) const;

  std::string ToString() const;

 private:
  std::array<double, kNumResourceTypes> values_;
};

}  // namespace optimus

#endif  // SRC_CLUSTER_RESOURCES_H_
