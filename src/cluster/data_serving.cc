#include "src/cluster/data_serving.h"

#include <algorithm>
#include <numeric>

#include "src/common/logging.h"

namespace optimus {

int64_t EstimateExampleBytes(const ModelSpec& spec) {
  // Keyed on dataset, following typical on-disk sizes.
  if (spec.dataset == "CIFAR10") {
    return 3 * 1024;  // 32x32x3 + label
  }
  if (spec.dataset == "ILSVRC2012-ImageNet") {
    return 110 * 1024;  // JPEG average
  }
  if (spec.dataset == "Caltech") {
    return 90 * 1024;
  }
  if (spec.dataset == "Kaggle-NDSB1") {
    return 25 * 1024;
  }
  if (spec.dataset == "LibriSpeech") {
    return 1200 * 1024;  // ~10s FLAC audio
  }
  // Text corpora (MR, text8, PTB, WMT17): order of a sentence / window.
  return 1024;
}

int64_t EstimateDatasetBytes(const ModelSpec& spec, double dataset_scale) {
  OPTIMUS_CHECK_GT(dataset_scale, 0.0);
  const double bytes = static_cast<double>(spec.dataset_examples) * dataset_scale *
                       static_cast<double>(EstimateExampleBytes(spec));
  return std::max<int64_t>(1, static_cast<int64_t>(bytes));
}

DataServing::DataServing(int64_t dataset_bytes, int64_t chunk_bytes) {
  OPTIMUS_CHECK_GT(dataset_bytes, 0);
  OPTIMUS_CHECK_GT(chunk_bytes, 0);
  const int64_t chunks = std::max<int64_t>(1, (dataset_bytes + chunk_bytes - 1) / chunk_bytes);
  chunk_owner_.assign(static_cast<size_t>(chunks), -1);
}

void DataServing::AssignInitial(int num_workers) {
  OPTIMUS_CHECK_GT(num_workers, 0);
  num_workers_ = num_workers;
  for (size_t c = 0; c < chunk_owner_.size(); ++c) {
    chunk_owner_[c] = static_cast<int>(c % static_cast<size_t>(num_workers));
  }
}

int64_t DataServing::Rebalance(int new_num_workers) {
  OPTIMUS_CHECK_GT(new_num_workers, 0);
  if (num_workers_ == 0) {
    AssignInitial(new_num_workers);
    return 0;
  }
  if (new_num_workers == num_workers_) {
    return 0;
  }

  const int64_t total = num_chunks();
  const int64_t base = total / new_num_workers;
  int64_t extra = total % new_num_workers;  // first `extra` workers get base+1

  // Target count per (new) worker.
  std::vector<int64_t> target(new_num_workers, base);
  for (int w = 0; w < new_num_workers && extra > 0; ++w, --extra) {
    ++target[w];
  }

  // Current counts, restricted to workers that still exist.
  std::vector<int64_t> have(new_num_workers, 0);
  std::vector<int64_t> to_move;  // chunk ids that must find a new owner
  for (size_t c = 0; c < chunk_owner_.size(); ++c) {
    const int owner = chunk_owner_[c];
    if (owner >= 0 && owner < new_num_workers && have[owner] < target[owner]) {
      ++have[owner];
    } else {
      to_move.push_back(static_cast<int64_t>(c));
    }
  }

  // Fill under-target workers with the chunks that must move.
  int64_t moved = 0;
  int w = 0;
  for (int64_t c : to_move) {
    while (w < new_num_workers && have[w] >= target[w]) {
      ++w;
    }
    OPTIMUS_CHECK_LT(w, new_num_workers);
    if (chunk_owner_[static_cast<size_t>(c)] != w) {
      ++moved;
    }
    chunk_owner_[static_cast<size_t>(c)] = w;
    ++have[w];
  }

  num_workers_ = new_num_workers;
  return moved;
}

std::vector<int64_t> DataServing::ChunksPerWorker() const {
  std::vector<int64_t> counts(std::max(num_workers_, 1), 0);
  for (int owner : chunk_owner_) {
    if (owner >= 0 && owner < static_cast<int>(counts.size())) {
      ++counts[owner];
    }
  }
  return counts;
}

int64_t DataServing::MaxMinSpread() const {
  const std::vector<int64_t> counts = ChunksPerWorker();
  const auto [mn, mx] = std::minmax_element(counts.begin(), counts.end());
  return *mx - *mn;
}

}  // namespace optimus
