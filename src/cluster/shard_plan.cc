#include "src/cluster/shard_plan.h"

#include <algorithm>

#include "src/common/logging.h"

namespace optimus {

ShardPlan ShardPlan::Build(int num_shards, int n_servers, int rack_size) {
  ShardPlan plan;
  plan.n_servers_ = std::max(0, n_servers);
  const int shards =
      std::clamp(num_shards, 1, std::max(1, plan.n_servers_));
  if (plan.n_servers_ == 0) {
    plan.ranges_.assign(static_cast<size_t>(shards), {0, 0});
    return plan;
  }

  // Work in units of racks so shard boundaries never split a rack; without a
  // rack partition every server is its own unit.
  const int unit = rack_size > 0 ? std::min(rack_size, plan.n_servers_) : 1;
  const int units = (plan.n_servers_ + unit - 1) / unit;
  plan.ranges_.reserve(static_cast<size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    // Even deal of units: shard s takes units [s*U/S, (s+1)*U/S).
    const int64_t u_begin = static_cast<int64_t>(s) * units / shards;
    const int64_t u_end = static_cast<int64_t>(s + 1) * units / shards;
    const int begin = static_cast<int>(u_begin) * unit;
    const int end = std::min(plan.n_servers_, static_cast<int>(u_end) * unit);
    plan.ranges_.push_back({std::min(begin, plan.n_servers_), end});
  }
  return plan;
}

int ShardPlan::ShardOf(int server) const {
  OPTIMUS_CHECK_GE(server, 0);
  OPTIMUS_CHECK_LT(server, n_servers_);
  for (size_t s = 0; s < ranges_.size(); ++s) {
    if (server >= ranges_[s].first && server < ranges_[s].second) {
      return static_cast<int>(s);
    }
  }
  OPTIMUS_LOG(Fatal) << "shard ranges do not cover server " << server;
  return -1;
}

}  // namespace optimus
