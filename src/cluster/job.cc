#include "src/cluster/job.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace optimus {

int JobSpec::GlobalBatch() const {
  OPTIMUS_CHECK(model != nullptr);
  return global_batch > 0 ? global_batch : model->default_sync_batch;
}

int JobSpec::AsyncMinibatch() const {
  OPTIMUS_CHECK(model != nullptr);
  return async_minibatch > 0 ? async_minibatch : model->default_async_minibatch;
}

int64_t JobSpec::StepsPerEpoch() const {
  OPTIMUS_CHECK(model != nullptr);
  OPTIMUS_CHECK_GT(dataset_scale, 0.0);
  const double examples = static_cast<double>(model->dataset_examples) * dataset_scale;
  // For async training each step consumes one per-worker mini-batch; we use
  // the global batch for sync and the per-worker batch for async, matching
  // how frameworks count steps.
  const int batch = mode == TrainingMode::kSync ? GlobalBatch() : AsyncMinibatch();
  return std::max<int64_t>(1, static_cast<int64_t>(examples / batch));
}

int JobSpec::BatchMin() const {
  OPTIMUS_CHECK(model != nullptr);
  return batch_min > 0 ? batch_min : model->min_global_batch;
}

int JobSpec::BatchMax() const {
  OPTIMUS_CHECK(model != nullptr);
  return batch_max > 0 ? batch_max : model->max_global_batch;
}

double JobSpec::CpuSensitivity() const {
  OPTIMUS_CHECK(model != nullptr);
  return cpu_sensitivity >= 0.0 ? cpu_sensitivity : model->cpu_sensitivity;
}

double JobSpec::MemSensitivity() const {
  OPTIMUS_CHECK(model != nullptr);
  return mem_sensitivity >= 0.0 ? mem_sensitivity : model->mem_sensitivity;
}

double JobSpec::GradNoiseScale() const {
  OPTIMUS_CHECK(model != nullptr);
  return model->grad_noise_scale;
}

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kPending:
      return "pending";
    case JobState::kRunning:
      return "running";
    case JobState::kPaused:
      return "paused";
    case JobState::kCompleted:
      return "completed";
  }
  return "unknown";
}

Job::Job(JobSpec spec) : spec_(spec) {
  OPTIMUS_CHECK(spec_.model != nullptr);
  OPTIMUS_CHECK_GT(spec_.convergence_delta, 0.0);
  OPTIMUS_CHECK_GE(spec_.patience, 1);
  OPTIMUS_CHECK_GE(spec_.max_workers, 1);
  OPTIMUS_CHECK_GE(spec_.max_ps, 1);
}

double Job::EpochsDone() const {
  return steps_done_ / static_cast<double>(spec_.StepsPerEpoch());
}

void Job::AdvanceSteps(double steps) {
  OPTIMUS_CHECK_GE(steps, 0.0);
  steps_done_ += steps;
}

bool Job::RecordEpochLoss(double loss) {
  if (converged_) {
    return false;
  }
  if (!epoch_losses_.empty()) {
    const double prev = epoch_losses_.back();
    const double rel_drop = prev > 0.0 ? (prev - loss) / prev : 0.0;
    if (rel_drop < spec_.convergence_delta) {
      ++below_threshold_streak_;
    } else {
      below_threshold_streak_ = 0;
    }
  }
  epoch_losses_.push_back(loss);
  ++epochs_recorded_;
  if (below_threshold_streak_ >= spec_.patience) {
    converged_ = true;
  }
  return converged_;
}

bool Job::SetAllocation(int num_ps, int num_workers, JobPlacement placement) {
  OPTIMUS_CHECK_GE(num_ps, 0);
  OPTIMUS_CHECK_GE(num_workers, 0);
  const bool changed = num_ps != num_ps_ || num_workers != num_workers_;
  const bool scaling_event = changed && ever_allocated_ && num_ps > 0 && num_workers > 0;
  num_ps_ = num_ps;
  num_workers_ = num_workers;
  placement_ = std::move(placement);
  if (num_ps > 0 && num_workers > 0) {
    ever_allocated_ = true;
  }
  if (scaling_event) {
    ++num_scalings_;
  }
  return scaling_event;
}

void Job::TakeCheckpoint() {
  checkpoint_steps_ = steps_done_;
  checkpoint_epochs_recorded_ = epochs_recorded_;
  checkpoint_streak_ = below_threshold_streak_;
}

double Job::RollbackToCheckpoint() {
  OPTIMUS_CHECK(!converged_) << "job " << id() << " rolled back after converging";
  const double lost = std::max(0.0, steps_done_ - checkpoint_steps_);
  steps_done_ = checkpoint_steps_;
  epochs_recorded_ = checkpoint_epochs_recorded_;
  epoch_losses_.resize(static_cast<size_t>(checkpoint_epochs_recorded_));
  below_threshold_streak_ = checkpoint_streak_;
  return lost;
}

void Job::AddStall(double seconds) {
  OPTIMUS_CHECK_GE(seconds, 0.0);
  stall_remaining_s_ += seconds;
}

double Job::ConsumeStall(double dt) {
  OPTIMUS_CHECK_GE(dt, 0.0);
  const double consumed = std::min(dt, stall_remaining_s_);
  stall_remaining_s_ -= consumed;
  total_stall_s_ += consumed;
  return consumed;
}

void Job::MarkCompleted(double now_s) {
  OPTIMUS_CHECK(state_ != JobState::kCompleted);
  state_ = JobState::kCompleted;
  completion_time_s_ = now_s;
}

double Job::Jct() const {
  OPTIMUS_CHECK_GE(completion_time_s_, 0.0);
  return completion_time_s_ - spec_.arrival_time_s;
}

}  // namespace optimus
