// Deep-learning training jobs: static specification and runtime state.
//
// A job trains one Table-1 model in synchronous or asynchronous mode until its
// observed training loss converges (§2.1): the relative per-epoch loss
// decrease stays below the owner-specified threshold for `patience`
// consecutive epochs. The scheduler adjusts the job's worker / parameter-
// server counts between scheduling intervals; each adjustment costs a
// checkpoint-restart stall (§5.4).

#ifndef SRC_CLUSTER_JOB_H_
#define SRC_CLUSTER_JOB_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/cluster/resources.h"
#include "src/models/loss_curve.h"
#include "src/models/model_zoo.h"
#include "src/pserver/comm_model.h"

namespace optimus {

struct JobSpec {
  int id = 0;
  const ModelSpec* model = nullptr;
  TrainingMode mode = TrainingMode::kSync;
  // Communication architecture: parameter-server (the paper's setting) or
  // ring all-reduce. All-reduce jobs are always synchronous and run no PS
  // tasks (the scheduler treats max_ps as 0 and ps_demand as zero).
  CommMode comm = CommMode::kParameterServer;
  // Convergence threshold delta: relative per-epoch training-loss decrease
  // below which an epoch counts toward convergence (§6.1 varies it in
  // [0.01, 0.05]).
  double convergence_delta = 0.02;
  int patience = 3;
  // Global batch M for sync; per-worker m for async. 0 selects model default.
  int global_batch = 0;
  int async_minibatch = 0;
  // Per-container resource requests, fixed by the job owner (§2.3).
  Resources worker_demand;
  Resources ps_demand;
  double arrival_time_s = 0.0;
  // Dataset downscaling factor (§6.1 shrinks large datasets so an experiment
  // finishes in hours); 1.0 = full dataset.
  double dataset_scale = 1.0;
  // Upper bound on workers / parameter servers the job can use.
  int max_workers = 32;
  int max_ps = 32;
  // Optional learning-rate decay event (§7 "Convergence estimation"): after
  // this epoch the true loss follows a steeper second segment, and Optimus
  // restarts its online convergence fitting.
  std::optional<LearningRateDrop> lr_drop;

  // Admissible global-batch range for batch-adaptive policies (sync jobs
  // only). 0 selects the model's advertised range; a job-level batch_min ==
  // batch_max pins the batch (disables adaptivity).
  int batch_min = 0;
  int batch_max = 0;
  // Per-job sensitivity overrides for resource-sensitive policies; negative
  // (the default) selects the model's profile.
  double cpu_sensitivity = -1.0;
  double mem_sensitivity = -1.0;

  int GlobalBatch() const;
  int AsyncMinibatch() const;
  // Steps per epoch after dataset downscaling (>= 1).
  int64_t StepsPerEpoch() const;

  // Resolved batch-adaptivity range / sensitivity profile (job override, else
  // model default).
  int BatchMin() const;
  int BatchMax() const;
  double CpuSensitivity() const;
  double MemSensitivity() const;
  // Gradient noise scale phi of the model's statistical-efficiency curve.
  double GradNoiseScale() const;
};

enum class JobState {
  kPending,    // arrived, not yet given resources
  kRunning,
  kPaused,     // allocated zero resources this interval (placement overflow)
  kCompleted,
};

const char* JobStateName(JobState state);

class Job {
 public:
  explicit Job(JobSpec spec);

  const JobSpec& spec() const { return spec_; }
  int id() const { return spec_.id; }
  JobState state() const { return state_; }
  void set_state(JobState state) { state_ = state; }

  // --- Training progress -------------------------------------------------
  double steps_done() const { return steps_done_; }
  double EpochsDone() const;
  // Advances training by `steps` (fractional steps accumulate).
  void AdvanceSteps(double steps);

  // Records the observed mean training loss of a completed epoch and
  // re-evaluates convergence. Returns true when the job just converged.
  bool RecordEpochLoss(double loss);
  bool converged() const { return converged_; }
  const std::vector<double>& epoch_losses() const { return epoch_losses_; }

  // --- Resource allocation -----------------------------------------------
  int num_workers() const { return num_workers_; }
  int num_ps() const { return num_ps_; }
  const JobPlacement& placement() const { return placement_; }
  // Buffer-recycling escape hatch for the placement engine: the scheduler
  // hands this to PlaceJobs (PlacementJobInput::recycle) so each round's
  // fresh placement reuses the previous round's dense vectors instead of
  // allocating server-sized buffers per job. The pointee may be left
  // moved-from; the caller must reassign it (SetAllocation) before anyone
  // reads the placement again.
  JobPlacement* mutable_placement() { return &placement_; }
  // Applies a new allocation; if the (p, w) pair changed while the job had
  // been running, a checkpoint-restart scaling event is counted and the
  // caller is expected to add the corresponding stall.
  // Returns true when this constitutes a scaling event.
  bool SetAllocation(int num_ps, int num_workers, JobPlacement placement);

  // Scheduler-chosen global batch override (batch-adaptive policies). 0 =
  // run at the configured spec batch. Epoch bookkeeping stays denominated in
  // reference-batch steps; the override only changes the job's effective
  // speed (see Simulator::TrueSpeed).
  int batch_override() const { return batch_override_; }
  void set_batch_override(int batch) { batch_override_ = batch; }

  // --- Checkpoint / rollback (fault tolerance, §5.4) -----------------------
  // Records the current progress (steps plus convergence bookkeeping) as the
  // latest durable checkpoint. Called on every scaling event (Optimus saves
  // the model to scale) and optionally on a periodic schedule.
  void TakeCheckpoint();
  double checkpoint_steps() const { return checkpoint_steps_; }
  // A crash destroyed everything since the last checkpoint: restores steps
  // and the convergence-detection state recorded by TakeCheckpoint. Stall and
  // scaling accounting are unaffected. Returns the number of steps lost.
  double RollbackToCheckpoint();

  // --- Stalls (checkpoint scaling, straggler replacement) -----------------
  double stall_remaining_s() const { return stall_remaining_s_; }
  void AddStall(double seconds);
  // Consumes up to `dt` seconds of stall; returns the seconds actually
  // consumed (training cannot progress during them).
  double ConsumeStall(double dt);
  double total_stall_s() const { return total_stall_s_; }
  int num_scalings() const { return num_scalings_; }

  // --- Stragglers ----------------------------------------------------------
  double slowest_worker_factor() const { return slowest_worker_factor_; }
  void set_slowest_worker_factor(double f) { slowest_worker_factor_ = f; }

  // --- Completion ----------------------------------------------------------
  double completion_time_s() const { return completion_time_s_; }
  void MarkCompleted(double now_s);
  // Job completion time (JCT) = completion - arrival.
  double Jct() const;

 private:
  JobSpec spec_;
  JobState state_ = JobState::kPending;

  double steps_done_ = 0.0;
  int64_t epochs_recorded_ = 0;
  std::vector<double> epoch_losses_;
  int below_threshold_streak_ = 0;
  bool converged_ = false;

  int num_workers_ = 0;
  int num_ps_ = 0;
  JobPlacement placement_;
  bool ever_allocated_ = false;
  int batch_override_ = 0;

  double checkpoint_steps_ = 0.0;
  int64_t checkpoint_epochs_recorded_ = 0;
  int checkpoint_streak_ = 0;

  double stall_remaining_s_ = 0.0;
  double total_stall_s_ = 0.0;
  int num_scalings_ = 0;

  double slowest_worker_factor_ = 1.0;

  double completion_time_s_ = -1.0;
};

}  // namespace optimus

#endif  // SRC_CLUSTER_JOB_H_
