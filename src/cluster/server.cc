#include "src/cluster/server.h"

#include <algorithm>
#include <limits>

#include "src/common/logging.h"

namespace optimus {

void Server::Allocate(const Resources& demand) {
  OPTIMUS_CHECK(CanFit(demand)) << "server " << id_ << " cannot fit "
                                << demand.ToString() << "; free " << Free().ToString();
  used_ += demand;
}

void Server::Release(const Resources& demand) {
  used_ -= demand;
  OPTIMUS_CHECK(used_.IsNonNegative())
      << "server " << id_ << " released more than allocated";
  for (size_t i = 0; i < kNumResourceTypes; ++i) {
    const ResourceType type = static_cast<ResourceType>(i);
    if (used_.Get(type) < 0.0) {
      used_.Set(type, 0.0);
    }
  }
}

std::vector<Server> BuildTestbed() {
  std::vector<Server> servers;
  int id = 0;
  // 7 CPU servers: two 8-core Intel E5-2650, 80 GB memory, 1 GbE.
  for (int i = 0; i < 7; ++i) {
    servers.emplace_back(id++, Resources(/*cpu=*/16, /*memory_gb=*/80, /*gpu=*/0,
                                         /*bandwidth_gbps=*/1));
  }
  // 6 GPU servers: 8-core Intel E5-1660, two GeForce 1080Ti, 48 GB, 1 GbE.
  for (int i = 0; i < 6; ++i) {
    servers.emplace_back(id++, Resources(/*cpu=*/8, /*memory_gb=*/48, /*gpu=*/2,
                                         /*bandwidth_gbps=*/1));
  }
  return servers;
}

std::vector<Server> BuildUniformCluster(int n, const Resources& capacity) {
  std::vector<Server> servers;
  servers.reserve(n);
  for (int i = 0; i < n; ++i) {
    servers.emplace_back(i, capacity);
  }
  return servers;
}

Resources TotalCapacity(const std::vector<Server>& servers) {
  Resources total;
  for (const Server& s : servers) {
    total += s.capacity();
  }
  return total;
}

Resources TotalFree(const std::vector<Server>& servers) {
  Resources total;
  for (const Server& s : servers) {
    total += s.Free();
  }
  return total;
}

Resources PlaceableCapacity(const std::vector<Server>& servers,
                            const Resources& reference_demand) {
  Resources total;
  for (const Server& s : servers) {
    if (!s.available()) {
      continue;
    }
    int slots = std::numeric_limits<int>::max();
    bool constrained = false;
    for (size_t i = 0; i < kNumResourceTypes; ++i) {
      const ResourceType type = static_cast<ResourceType>(i);
      const double d = reference_demand.Get(type);
      if (d > 0.0) {
        constrained = true;
        slots = std::min(slots, static_cast<int>(s.capacity().Get(type) / d));
      }
    }
    if (!constrained) {
      total += s.capacity();
      continue;
    }
    total += reference_demand * slots;
  }
  return total;
}

}  // namespace optimus
