#include "src/cluster/checkpoint.h"

#include "src/common/logging.h"

namespace optimus {

double CheckpointStallSeconds(const ModelSpec& model, const CheckpointConfig& config) {
  OPTIMUS_CHECK_GT(config.hdfs_throughput_bps, 0.0);
  const double bytes = static_cast<double>(model.ParamBytes());
  // Write the checkpoint, then read it back on restart.
  return 2.0 * bytes / config.hdfs_throughput_bps + config.relaunch_overhead_s;
}

bool ScalingAllowed(int num_scalings_so_far, const CheckpointConfig& config) {
  if (config.max_scalings_per_job <= 0) {
    return true;
  }
  return num_scalings_so_far < config.max_scalings_per_job;
}

}  // namespace optimus
